// Package energy provides time-resolved power and energy telemetry
// over simulated time: tumbling windows (index = floor(t/width), the
// same partition-independent binning as internal/obs/window) that
// accumulate per-resource-class utilization and completed-request
// counts, from which each window derives watts via a utilization-
// conditioned idle/active split layered on the static power model
// (power.Breakdown.At), integrates to joules, and reports
// energy-per-request, energy-per-QoS-satisfied-request and windowed
// perf-per-watt. Across windows the collector exposes an
// energy-proportionality curve — (utilization, watts) points and their
// least-squares slope — the time-resolved comparison the paper's
// static activity-factor model (internal/power) cannot make.
//
// The static model is the degenerate case: with every idle fraction at
// 1.0 the utilization term vanishes and each window's watts reproduce
// power.Breakdown.TotalW() bit-exactly, which the tests pin.
//
// Determinism follows the window package's discipline exactly: windows
// are pure functions of observation time, per-partition collectors
// merge in a fixed model order (MergeFrom), means are sums-of-sums,
// and every exported map marshals with sorted keys — so the -energy-out
// export is byte-identical at any shard or parallelism count.
package energy

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"warehousesim/internal/obs"
	"warehousesim/internal/power"
)

// Model is the utilization-conditioned power model of one run: the
// static per-server active breakdown (spec-sheet maxima scaled by the
// activity factor — exactly what power.Model.ServerConsumed returns)
// and the idle fraction per component class.
type Model struct {
	// Active is the per-server active-power breakdown, including the
	// rack-switch share.
	Active power.Breakdown
	// Idle is the idle/active split per component class;
	// power.StaticIdleFractions() (all 1.0) degenerates to the static
	// model.
	Idle power.IdleFractions
}

// Validate reports invalid models.
func (m Model) Validate() error {
	if err := m.Idle.Validate(); err != nil {
		return err
	}
	if w := m.Active.TotalW(); math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return fmt.Errorf("energy: invalid active power %g W", w)
	}
	return nil
}

// driverUtil returns the first present class's utilization, clamped to
// [0,1]; a component whose drivers were never observed draws idle power.
func driverUtil(util map[string]float64, classes ...string) float64 {
	for _, c := range classes {
		if v, ok := util[c]; ok {
			if v < 0 {
				return 0
			}
			if v > 1 {
				return 1
			}
			return v
		}
	}
	return 0
}

// WattsAt maps the observed per-resource-class utilizations (the
// classes the simulators' "util.<resource>" gauges produce: cpu, disk,
// net, san, memblade) onto the power model's component classes and
// returns the utilization-conditioned breakdown. The driver mapping is
// fixed and documented in DESIGN.md §10: each component interpolates on
// the utilization of the resource whose activity physically drives it,
// with rack-model names (san, memblade) preferred over their flat-model
// stand-ins when present.
func (m Model) WattsAt(util map[string]float64) power.Breakdown {
	return m.Active.At(m.Idle, power.Utilizations{
		CPU:    driverUtil(util, "cpu"),
		Memory: driverUtil(util, "memblade", "cpu"), // DRAM traffic tracks cores; blade when modeled
		Disk:   driverUtil(util, "disk", "san"),
		Board:  driverUtil(util, "net", "cpu"), // chipset+NIC electronics track I/O
		Fan:    driverUtil(util, "cpu"),        // fan speed tracks thermal (≈ core) load
		Flash:  driverUtil(util, "disk", "san"),
		Switch: driverUtil(util, "net"),
	})
}

// Config sizes a Collector.
type Config struct {
	// WidthSec is the tumbling window width in simulated seconds (> 0).
	WidthSec float64
	// Model derives watts from each window's utilization.
	Model Model
}

func (c Config) validate() error {
	if !(c.WidthSec > 0) || math.IsInf(c.WidthSec, 0) {
		return fmt.Errorf("energy: width must be positive and finite, got %g", c.WidthSec)
	}
	return c.Model.Validate()
}

// win is one tumbling window's accumulators: request/violation counts
// and (sum, count) utilization pairs per observed resource class, so
// merged means are sums-of-sums.
type win struct {
	index      int64
	requests   int64
	violations int64
	utilSum    map[string]float64
	utilN      map[string]int64
}

func (w *win) mergeFrom(o *win) {
	w.requests += o.requests
	w.violations += o.violations
	for k, v := range o.utilSum {
		if w.utilSum == nil {
			w.utilSum, w.utilN = map[string]float64{}, map[string]int64{}
		}
		w.utilSum[k] += v
		w.utilN[k] += o.utilN[k]
	}
}

// Window is the exported view of one sealed window: mean utilization
// per observed class, the derived power draw per component class and
// in total, the integrated joules, and the derived energy-efficiency
// tracks. T1 is clamped to the seal horizon, so the final partial
// window reports its true span.
type Window struct {
	Index    int64   `json:"i"`
	T0       float64 `json:"t0"`
	T1       float64 `json:"t1"`
	Requests int64   `json:"requests"`
	// Violations counts QoS-violating completions; Requests-Violations
	// is the QoS-satisfied ("good") request count.
	Violations int64 `json:"violations"`
	// Util is the mean utilization per observed resource class.
	Util map[string]float64 `json:"util,omitempty"`
	// WattsByClass is the derived draw per power-model component class.
	WattsByClass map[string]float64 `json:"watts_by_class"`
	// Watts is the total derived draw; Joules integrates it over the
	// window's span.
	Watts  float64 `json:"watts"`
	Joules float64 `json:"joules"`
	// JoulesPerRequest and JoulesPerGoodRequest are 0 when the window
	// completed no (good) requests.
	JoulesPerRequest     float64 `json:"joules_per_request"`
	JoulesPerGoodRequest float64 `json:"joules_per_good_request"`
	// PerfPerWatt is the window's throughput over its watts.
	PerfPerWatt float64 `json:"perf_per_watt"`
}

// CurvePoint is one point of the energy-proportionality curve: the
// window's driving (cpu-class) utilization and its derived total watts.
type CurvePoint struct {
	Util  float64 `json:"util"`
	Watts float64 `json:"watts"`
}

// Proportionality summarizes the energy-proportionality curve: the
// least-squares fit of watts against cpu utilization across windows. A
// perfectly proportional server has InterceptW 0; the static model has
// SlopeWPerUtil 0 (watts never move).
type Proportionality struct {
	Points        int     `json:"points"`
	SlopeWPerUtil float64 `json:"slope_w_per_util"`
	InterceptW    float64 `json:"intercept_w"`
	MinWatts      float64 `json:"min_watts"`
	MaxWatts      float64 `json:"max_watts"`
}

// Totals aggregates the sealed windows to run level.
type Totals struct {
	Windows  int     `json:"windows"`
	SpanSec  float64 `json:"span_sec"`
	Joules   float64 `json:"joules"`
	MeanW    float64 `json:"mean_watts"`
	StaticW  float64 `json:"static_watts"`
	Requests int64   `json:"requests"`
	// Violations counts QoS-violating completions over the run.
	Violations           int64   `json:"violations"`
	JoulesPerRequest     float64 `json:"joules_per_request"`
	JoulesPerGoodRequest float64 `json:"joules_per_good_request"`
	PerfPerWatt          float64 `json:"perf_per_watt"`
}

// Collector accumulates one partition's energy telemetry. Like
// window.Collector it is single-threaded — owned by the goroutine of
// the shard whose entities feed it — except LiveWindows, which readers
// may call concurrently (sealed summaries publish through an atomic
// copy-on-write slice).
type Collector struct {
	cfg     Config
	cur     *win
	sealed  []*win
	horizon float64

	live atomic.Pointer[[]Window]
}

// New builds a Collector with a validated config.
func New(cfg Config) (*Collector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Collector{cfg: cfg}, nil
}

// Config returns the collector's configuration.
func (c *Collector) Config() Config { return c.cfg }

// at returns the open window for time t, sealing the previous one when
// t crosses a boundary; stale times clamp into the open window.
func (c *Collector) at(t float64) *win {
	idx := int64(math.Floor(t / c.cfg.WidthSec))
	if c.cur == nil {
		c.cur = &win{index: idx}
		return c.cur
	}
	if idx <= c.cur.index {
		return c.cur
	}
	c.seal()
	c.cur = &win{index: idx}
	return c.cur
}

func (c *Collector) seal() {
	if c.cur == nil {
		return
	}
	c.sealed = append(c.sealed, c.cur)
	old := c.live.Load()
	var next []Window
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, c.summarize(c.cur))
	c.live.Store(&next)
	c.cur = nil
}

// ObserveRequest records one completed request at simulated time t.
func (c *Collector) ObserveRequest(t float64, violation bool) {
	w := c.at(t)
	w.requests++
	if violation {
		w.violations++
	}
}

// SampleUtil records one utilization sample for a resource class
// ("cpu", "san", ...); the window derives watts from its class means.
func (c *Collector) SampleUtil(class string, t, util float64) {
	w := c.at(t)
	if w.utilSum == nil {
		w.utilSum, w.utilN = map[string]float64{}, map[string]int64{}
	}
	w.utilSum[class] += util
	w.utilN[class]++
}

// Seal closes the open window at the end of a run; horizon, when > 0,
// clamps the final window's T1 so a partial last window integrates its
// true span.
func (c *Collector) Seal(horizon float64) {
	if horizon > 0 && (c.horizon == 0 || horizon < c.horizon) {
		c.horizon = horizon
	}
	c.seal()
}

func (c *Collector) summarize(w *win) Window {
	width := c.cfg.WidthSec
	t0 := float64(w.index) * width
	t1 := t0 + width
	if c.horizon > 0 && t1 > c.horizon {
		t1 = c.horizon
	}
	s := Window{
		Index: w.index, T0: t0, T1: t1,
		Requests: w.requests, Violations: w.violations,
	}
	var util map[string]float64
	if len(w.utilSum) > 0 {
		util = make(map[string]float64, len(w.utilSum))
		for k, sum := range w.utilSum {
			util[k] = sum / float64(w.utilN[k])
		}
		s.Util = util
	}
	b := c.cfg.Model.WattsAt(util)
	s.WattsByClass = map[string]float64{
		"cpu": b.CPUW, "memory": b.MemoryW, "disk": b.DiskW, "board": b.BoardW,
		"fan": b.FanW, "flash": b.FlashW, "switch": b.SwitchW,
	}
	s.Watts = b.TotalW()
	span := t1 - t0
	if span > 0 {
		s.Joules = s.Watts * span
	}
	if s.Watts > 0 && span > 0 {
		s.PerfPerWatt = float64(w.requests) / span / s.Watts
	}
	if w.requests > 0 {
		s.JoulesPerRequest = s.Joules / float64(w.requests)
	}
	if good := w.requests - w.violations; good > 0 {
		s.JoulesPerGoodRequest = s.Joules / float64(good)
	}
	return s
}

// Windows returns the sealed windows' summaries in index order.
func (c *Collector) Windows() []Window {
	out := make([]Window, len(c.sealed))
	for i, w := range c.sealed {
		out[i] = c.summarize(w)
	}
	return out
}

// LiveWindows returns the sealed summaries as of the last seal. Unlike
// every other method it is safe to call concurrently with the owner.
func (c *Collector) LiveWindows() []Window {
	if p := c.live.Load(); p != nil {
		return *p
	}
	return nil
}

// Totals aggregates the sealed windows to run level.
func (c *Collector) Totals() Totals {
	t := Totals{StaticW: c.cfg.Model.Active.TotalW()}
	for _, w := range c.sealed {
		s := c.summarize(w)
		t.Windows++
		t.SpanSec += s.T1 - s.T0
		t.Joules += s.Joules
		t.Requests += s.Requests
		t.Violations += s.Violations
	}
	if t.SpanSec > 0 {
		t.MeanW = t.Joules / t.SpanSec
	}
	if t.Requests > 0 {
		t.JoulesPerRequest = t.Joules / float64(t.Requests)
	}
	if good := t.Requests - t.Violations; good > 0 {
		t.JoulesPerGoodRequest = t.Joules / float64(good)
	}
	if t.Joules > 0 && t.SpanSec > 0 {
		t.PerfPerWatt = float64(t.Requests) / t.Joules // = throughput / mean watts
	}
	return t
}

// Curve returns the energy-proportionality curve: one (cpu-class
// utilization, total watts) point per sealed window, in index order.
// Windows that never observed a cpu sample are omitted — their 0-util
// point would be an artifact of probe phase, not of load.
func (c *Collector) Curve() []CurvePoint {
	var pts []CurvePoint
	for _, w := range c.sealed {
		if w.utilN["cpu"] == 0 {
			continue
		}
		s := c.summarize(w)
		pts = append(pts, CurvePoint{Util: driverUtil(s.Util, "cpu"), Watts: s.Watts})
	}
	return pts
}

// Proportionality fits the curve by least squares. With fewer than two
// points (or zero utilization variance) the slope and intercept are 0.
func (c *Collector) Proportionality() Proportionality {
	pts := c.Curve()
	p := Proportionality{Points: len(pts)}
	if len(pts) == 0 {
		return p
	}
	p.MinWatts, p.MaxWatts = pts[0].Watts, pts[0].Watts
	var sx, sy, sxx, sxy float64
	for _, pt := range pts {
		if pt.Watts < p.MinWatts {
			p.MinWatts = pt.Watts
		}
		if pt.Watts > p.MaxWatts {
			p.MaxWatts = pt.Watts
		}
		sx += pt.Util
		sy += pt.Watts
		sxx += pt.Util * pt.Util
		sxy += pt.Util * pt.Watts
	}
	n := float64(len(pts))
	if det := n*sxx - sx*sx; det > 0 {
		p.SlopeWPerUtil = (n*sxy - sx*sy) / det
		p.InterceptW = (sy - p.SlopeWPerUtil*sx) / n
	} else {
		p.InterceptW = sy / n
	}
	return p
}

// MergeFrom folds the parts' sealed windows into c, index-aligned, in
// argument order. The part order must be fixed by the model (enclosure
// order, then the rack-global part), never by the partitioning — the
// same discipline as window.Collector.MergeFrom — so the merged
// collector is byte-identical at any shard count. Parts must share c's
// config and be sealed; merging a collector into itself panics.
func (c *Collector) MergeFrom(parts ...*Collector) {
	for _, p := range parts {
		if p == c {
			panic("energy: Collector.MergeFrom cannot merge a collector into itself")
		}
		if p.cfg != c.cfg {
			panic(fmt.Sprintf("energy: MergeFrom config mismatch: %+v vs %+v", p.cfg, c.cfg))
		}
		if p.cur != nil {
			panic("energy: MergeFrom of an unsealed collector; call Seal first")
		}
		if p.horizon > 0 && (c.horizon == 0 || p.horizon < c.horizon) {
			c.horizon = p.horizon
		}
	}
	byIndex := map[int64]*win{}
	for _, w := range c.sealed {
		byIndex[w.index] = w
	}
	for _, p := range parts {
		for _, pw := range p.sealed {
			w := byIndex[pw.index]
			if w == nil {
				w = &win{index: pw.index}
				byIndex[pw.index] = w
			}
			w.mergeFrom(pw)
		}
	}
	indices := make([]int64, 0, len(byIndex))
	for i := range byIndex {
		indices = append(indices, i)
	}
	sort.Slice(indices, func(a, b int) bool { return indices[a] < indices[b] })
	c.sealed = c.sealed[:0]
	for _, i := range indices {
		c.sealed = append(c.sealed, byIndex[i])
	}
	var summaries []Window
	for _, w := range c.sealed {
		summaries = append(summaries, c.summarize(w))
	}
	c.live.Store(&summaries)
}

// EmitTotals writes the run-level energy summary into the
// deterministic recorder stream: energy.* counters and observations
// plus one "energy_total" event. Everything is computed from the
// merged collector, so the stream is identical at every shard and
// parallelism count. Call after Seal/MergeFrom.
func (c *Collector) EmitTotals(rec obs.Recorder) {
	if !obs.On(rec) {
		return
	}
	t := c.Totals()
	prop := c.Proportionality()
	rec.Count("energy.windows", int64(t.Windows))
	rec.Observe("energy.joules", t.Joules)
	rec.Observe("energy.mean_watts", t.MeanW)
	if t.Requests > 0 {
		rec.Observe("energy.joules_per_request", t.JoulesPerRequest)
	}
	rec.Event("energy_total", t.SpanSec,
		obs.F("joules", t.Joules),
		obs.F("mean_watts", t.MeanW),
		obs.F("static_watts", t.StaticW),
		obs.F("joules_per_request", t.JoulesPerRequest),
		obs.F("joules_per_good_request", t.JoulesPerGoodRequest),
		obs.F("perf_per_watt", t.PerfPerWatt),
		obs.F("prop_slope_w_per_util", prop.SlopeWPerUtil),
		obs.F("prop_intercept_w", prop.InterceptW))
}
