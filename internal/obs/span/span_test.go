package span

import (
	"testing"

	"warehousesim/internal/obs"
)

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Every() != 0 {
		t.Fatal("nil tracer reports a stride")
	}
	if tr.Sampled(0) {
		t.Fatal("nil tracer samples")
	}
	if id := tr.Emit(0, 0, KindRequest, "", 0, 1); id != 0 {
		t.Fatalf("nil Emit returned id %d", id)
	}
	if id := tr.Begin(0, 0, KindRequest, "", 0); id != 0 {
		t.Fatalf("nil Begin returned id %d", id)
	}
	tr.End(1, 2)
	tr.FlushOpen(10)
	if tr.OpenCount() != 0 {
		t.Fatal("nil tracer has open spans")
	}
}

func TestNewTracerDisabledRecorder(t *testing.T) {
	if NewTracer(nil, 1) != nil {
		t.Fatal("NewTracer(nil) is not nil")
	}
}

func TestSampling(t *testing.T) {
	tr := NewTracer(obs.NewSink(), 3)
	want := map[int64]bool{0: true, 1: false, 2: false, 3: true, 6: true, 7: false}
	for idx, w := range want {
		if tr.Sampled(idx) != w {
			t.Errorf("Sampled(%d) = %v, want %v with every=3", idx, !w, w)
		}
	}
	// every < 1 normalizes to keep-all.
	if all := NewTracer(obs.NewSink(), 0); !all.Sampled(17) {
		t.Error("every=0 tracer should keep every request")
	}
}

func TestEmitIDsDenseAndDecoded(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	a := tr.Emit(0, 5, KindRequest, "request", 1.0, 3.0)
	b := tr.Emit(a, 5, KindQueue, "cpu", 1.0, 1.5)
	c := tr.Emit(a, 5, KindService, "cpu", 1.5, 3.0)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("ids not dense from 1: %d %d %d", a, b, c)
	}
	spans := Decoded(sink.Events())
	if len(spans) != 3 {
		t.Fatalf("decoded %d spans, want 3", len(spans))
	}
	got := spans[2]
	want := Span{ID: 3, Parent: 1, Req: 5, Kind: KindService, Res: "cpu", Start: 1.5, Dur: 1.5}
	if got != want {
		t.Fatalf("decoded span = %+v, want %+v", got, want)
	}
}

func TestZeroDurationSpanKept(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	tr.Emit(0, 0, KindQueue, "cpu", 2.0, 2.0) // empty queue: zero wait
	spans := Decoded(sink.Events())
	if len(spans) != 1 {
		t.Fatalf("zero-duration span dropped")
	}
	if spans[0].Dur != 0 {
		t.Fatalf("dur = %g, want 0", spans[0].Dur)
	}
}

func TestNegativeDurationClamps(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	tr.Emit(0, 0, KindService, "cpu", 2.0, 2.0-1e-18) // fp cancellation
	if d := Decoded(sink.Events())[0].Dur; d != 0 {
		t.Fatalf("negative duration not clamped: %g", d)
	}
}

func TestBeginEndLifecycle(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	id := tr.Begin(0, 0, KindRequest, "request", 1.0)
	if tr.OpenCount() != 1 {
		t.Fatalf("open count = %d, want 1", tr.OpenCount())
	}
	if len(sink.Events()) != 0 {
		t.Fatal("Begin emitted before End")
	}
	tr.End(id, 4.0)
	if tr.OpenCount() != 0 {
		t.Fatal("span still open after End")
	}
	s := Decoded(sink.Events())[0]
	if s.Dur != 3.0 || s.Open {
		t.Fatalf("ended span = %+v", s)
	}
	// Double-End and unknown-End are no-ops.
	tr.End(id, 9.0)
	tr.End(999, 9.0)
	if len(sink.Events()) != 1 {
		t.Fatal("re-End emitted again")
	}
}

func TestFlushOpenTruncatesInIDOrder(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	// Begin three, end the middle one; flush the rest at the horizon.
	a := tr.Begin(0, 0, KindRequest, "request", 1.0)
	b := tr.Begin(0, 1, KindRequest, "request", 2.0)
	c := tr.Begin(0, 2, KindRequest, "request", 3.0)
	tr.End(b, 4.0)
	tr.FlushOpen(10.0)
	if tr.OpenCount() != 0 {
		t.Fatal("spans still open after FlushOpen")
	}
	spans := Decoded(sink.Events())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Emission order: b (ended), then a and c in ID order.
	if spans[0].ID != b || spans[1].ID != a || spans[2].ID != c {
		t.Fatalf("flush order: %d %d %d, want %d %d %d",
			spans[0].ID, spans[1].ID, spans[2].ID, b, a, c)
	}
	for _, s := range spans[1:] {
		if !s.Open {
			t.Fatalf("flushed span %d not marked open", s.ID)
		}
		if s.End() != 10.0 {
			t.Fatalf("flushed span %d ends at %g, want horizon 10", s.ID, s.End())
		}
	}
	if spans[0].Open {
		t.Fatal("normally-ended span marked open")
	}
}

func TestDecodeRejectsOtherStreams(t *testing.T) {
	sink := obs.NewSink()
	sink.Event("request", 1.0, obs.F("latency_sec", 0.5))
	if _, ok := Decode(sink.Events()[0]); ok {
		t.Fatal("Decode accepted a non-span stream")
	}
	if n := len(Decoded(sink.Events())); n != 0 {
		t.Fatalf("Decoded returned %d spans from a span-free sink", n)
	}
}
