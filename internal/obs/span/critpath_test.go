package span

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"warehousesim/internal/obs"
)

// emitRequest records one completed request whose children tile the
// root exactly: queue then service per resource, with swapSec of the
// cpu service nested as a remote-memory span.
func emitRequest(tr *Tracer, req int64, start, cpuQ, cpuS, swapSec, diskQ, diskS float64) {
	t := start
	root := tr.Begin(0, req, KindRequest, "request", t)
	tr.Emit(root, req, KindQueue, "cpu", t, t+cpuQ)
	t += cpuQ
	sid := tr.Emit(root, req, KindService, "cpu", t, t+cpuS)
	if swapSec > 0 {
		tr.Emit(sid, req, KindSwap, "memblade", t, t+swapSec)
	}
	t += cpuS
	tr.Emit(root, req, KindQueue, "disk", t, t+diskQ)
	t += diskQ
	tr.Emit(root, req, KindService, "disk", t, t+diskS)
	t += diskS
	tr.End(root, t)
}

func TestAnalyzeKnownBreakdown(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	// Two requests with hand-computable totals:
	//   queue 1+2 + 3+4 = 10, cpu service (6-1)+(8-2)=11 after the swap
	//   carve-out, remote-memory 1+2=3, disk service 5+7=12.
	emitRequest(tr, 0, 0, 1, 6, 1, 3, 5)
	emitRequest(tr, 1, 100, 2, 8, 2, 4, 7)
	a := Analyze(sink.Events())

	if a.Requests != 2 || a.OpenRequests != 0 {
		t.Fatalf("requests = %d open = %d, want 2/0", a.Requests, a.OpenRequests)
	}
	want := map[string]float64{
		CatQueue: 10, CatService: 11, CatRemoteMem: 3, CatDisk: 12,
	}
	got := map[string]float64{}
	for _, r := range a.Rows {
		got[r.Category] = r.TotalSec
	}
	for cat, w := range want {
		if math.Abs(got[cat]-w) > 1e-9 {
			t.Errorf("%s total = %g, want %g", cat, got[cat], w)
		}
	}
	// The buckets tile the requests: category sum == root sum, and the
	// shares sum to exactly 100%.
	if math.Abs(a.TotalSec-a.RootSec) > 1e-9 {
		t.Errorf("category sum %g != root sum %g", a.TotalSec, a.RootSec)
	}
	if s := sumShare(a.Rows); math.Abs(s-1) > 1e-12 {
		t.Errorf("shares sum to %g, want 1", s)
	}
}

func TestAnalyzeExcludesOpenRequests(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	emitRequest(tr, 0, 0, 1, 2, 0, 1, 2)
	tr.Begin(0, 1, KindRequest, "request", 3)
	tr.FlushOpen(10)
	a := Analyze(sink.Events())
	if a.Requests != 1 || a.OpenRequests != 1 {
		t.Fatalf("requests = %d open = %d, want 1/1", a.Requests, a.OpenRequests)
	}
	if math.Abs(a.RootSec-6) > 1e-9 {
		t.Errorf("root sum %g includes the truncated request, want 6", a.RootSec)
	}
}

func TestAnalyzeCBFNotDoubleCounted(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	root := tr.Begin(0, 0, KindRequest, "request", 0)
	sid := tr.Emit(root, 0, KindService, "cpu", 0, 4)
	swap := tr.Emit(sid, 0, KindSwap, "memblade", 0, 1)
	tr.Emit(swap, 0, KindCBF, "", 0, 0.2) // detail inside the swap
	tr.End(root, 4)
	a := Analyze(sink.Events())
	got := map[string]float64{}
	for _, r := range a.Rows {
		got[r.Category] = r.TotalSec
	}
	if got[CatRemoteMem] != 1 {
		t.Errorf("remote-memory = %g, want 1 (cbf must not add)", got[CatRemoteMem])
	}
	if got[CatService] != 3 {
		t.Errorf("service = %g, want 3 after swap carve-out", got[CatService])
	}
}

func TestAnalyzePercentiles(t *testing.T) {
	sink := obs.NewSink()
	tr := NewTracer(sink, 1)
	// 100 requests with queue time = i ms and nothing else.
	for i := 0; i < 100; i++ {
		root := tr.Begin(0, int64(i), KindRequest, "request", float64(i))
		tr.Emit(root, int64(i), KindQueue, "cpu", float64(i), float64(i)+float64(i)*1e-3)
		tr.End(root, float64(i)+float64(i)*1e-3)
	}
	a := Analyze(sink.Events())
	var q Row
	for _, r := range a.Rows {
		if r.Category == CatQueue {
			q = r
		}
	}
	// Nearest-rank over 0..99 ms.
	if math.Abs(q.P50-0.049) > 1e-12 || math.Abs(q.P95-0.094) > 1e-12 || math.Abs(q.P99-0.098) > 1e-12 {
		t.Errorf("p50/p95/p99 = %g/%g/%g, want 0.049/0.094/0.098", q.P50, q.P95, q.P99)
	}
}

func TestAttributionOutputsDeterministic(t *testing.T) {
	mk := func() Attribution {
		sink := obs.NewSink()
		tr := NewTracer(sink, 1)
		emitRequest(tr, 0, 0, 1, 6, 1, 3, 5)
		emitRequest(tr, 1, 100, 2, 8, 2, 4, 7)
		return Analyze(sink.Events())
	}
	a, b := mk(), mk()
	var ca, cb bytes.Buffer
	if err := a.WriteCSV(&ca); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("same spans produced different CSVs")
	}
	if a.String() != b.String() {
		t.Fatal("same spans produced different tables")
	}
	// CSV shape: header + one row per category + total.
	lines := strings.Split(strings.TrimSpace(ca.String()), "\n")
	if len(lines) != 1+len(a.Rows)+1 {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+len(a.Rows)+1)
	}
	if lines[0] != "category,total_sec,share,p50_sec,p95_sec,p99_sec" {
		t.Fatalf("csv header = %q", lines[0])
	}
}
