package span

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"warehousesim/internal/obs"
)

// Attribution categories. Every leaf span maps to exactly one bucket,
// so the shares sum to 100% of traced request time:
//
//   - "queue":         waiting for a free server at any resource
//   - "service":       cpu/net server occupancy, minus the remote-memory
//     share carved out of it (see below)
//   - "remote-memory": memory-blade page-swap stalls (swap spans); when
//     a swap span is nested inside a service span its time moves from
//     service to remote-memory instead of double-counting
//   - "disk":          storage-station occupancy and flash/SAN accesses
const (
	CatQueue     = "queue"
	CatService   = "service"
	CatRemoteMem = "remote-memory"
	CatDisk      = "disk"
	CatOther     = "other"
)

// categories is the fixed presentation order.
var categories = [...]string{CatQueue, CatService, CatRemoteMem, CatDisk}

// Row is one category of the attribution table.
type Row struct {
	Category string
	// TotalSec is the summed span time in this category across all
	// completed sampled requests (time-axis units).
	TotalSec float64
	// Share is TotalSec over the sum of all categories, in [0,1].
	Share float64
	// P50/P95/P99 are per-request time in this category (nearest-rank
	// over completed sampled requests, zero-contributions included).
	P50, P95, P99 float64
}

// Attribution is the critical-path latency-attribution table built
// from a run's span stream.
type Attribution struct {
	// Requests is the number of completed sampled requests analyzed;
	// OpenRequests counts root spans truncated at the horizon and
	// excluded from the table.
	Requests     int
	OpenRequests int
	// TotalSec sums every category (== total attributed time); RootSec
	// sums the root request spans, for reconciliation: the two agree to
	// floating-point rounding because children tile their root.
	TotalSec float64
	RootSec  float64
	Rows     []Row
}

// categorize maps one leaf span to its attribution bucket.
func categorize(s Span) string {
	switch s.Kind {
	case KindQueue:
		return CatQueue
	case KindSwap:
		return CatRemoteMem
	case KindStorage:
		return CatDisk
	case KindService:
		if s.Res == "disk" {
			return CatDisk
		}
		return CatService
	default:
		return CatOther
	}
}

// Analyze aggregates a run's span events into the attribution table.
// Requests whose root span is open (cut off at the horizon) are
// excluded — their breakdown is incomplete; CBF sub-spans are detail
// inside their swap parent and are not double-counted.
func Analyze(events []obs.EventRecord) Attribution {
	spans := Decoded(events)

	// Pass 1: per-request state and the service spans swap time must be
	// carved out of.
	type reqAgg struct {
		cats    map[string]float64
		rootDur float64
		hasRoot bool
		open    bool
	}
	reqs := map[int64]*reqAgg{}
	agg := func(req int64) *reqAgg {
		a := reqs[req]
		if a == nil {
			a = &reqAgg{cats: map[string]float64{}}
			reqs[req] = a
		}
		return a
	}
	serviceOwner := map[int64]int64{} // service span id -> req
	for _, s := range spans {
		if s.Kind == KindService {
			serviceOwner[s.ID] = s.Req
		}
	}
	for _, s := range spans {
		a := agg(s.Req)
		switch s.Kind {
		case KindRequest:
			a.hasRoot = true
			a.rootDur = s.Dur
			a.open = a.open || s.Open
		case KindCBF:
			// detail inside its swap parent; the swap already counts
		case KindSwap:
			a.cats[CatRemoteMem] += s.Dur
			if _, ok := serviceOwner[s.Parent]; ok {
				// Nested in a service span: move the time out of service
				// so the buckets still tile the request.
				a.cats[CatService] -= s.Dur
			}
		default:
			a.cats[categorize(s)] += s.Dur
		}
	}

	// Pass 2: totals and per-request percentile inputs over completed
	// requests, in sorted request order for determinism.
	ids := make([]int64, 0, len(reqs))
	for id := range reqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := Attribution{}
	perReq := map[string][]float64{}
	for _, id := range ids {
		a := reqs[id]
		if a.open || !a.hasRoot {
			if a.open {
				out.OpenRequests++
			}
			continue
		}
		out.Requests++
		out.RootSec += a.rootDur
		for _, cat := range categories {
			v := a.cats[cat]
			out.TotalSec += v
			perReq[cat] = append(perReq[cat], v)
		}
		if v := a.cats[CatOther]; v != 0 {
			out.TotalSec += v
			perReq[CatOther] = append(perReq[CatOther], v)
		}
	}

	order := categories[:]
	if len(perReq[CatOther]) > 0 {
		order = append(append([]string{}, order...), CatOther)
	}
	for _, cat := range order {
		vs := perReq[cat]
		row := Row{Category: cat}
		for _, v := range vs {
			row.TotalSec += v
		}
		if out.TotalSec > 0 {
			row.Share = row.TotalSec / out.TotalSec
		}
		sort.Float64s(vs)
		row.P50 = quantile(vs, 0.50)
		row.P95 = quantile(vs, 0.95)
		row.P99 = quantile(vs, 0.99)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// quantile is the nearest-rank quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String renders the fixed-width table whsim prints.
func (a Attribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency attribution (%d requests", a.Requests)
	if a.OpenRequests > 0 {
		fmt.Fprintf(&b, ", %d open at horizon excluded", a.OpenRequests)
	}
	b.WriteString("):\n")
	fmt.Fprintf(&b, "  %-14s %12s %8s %10s %10s %10s\n",
		"category", "total-sec", "share", "p50-ms", "p95-ms", "p99-ms")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-14s %12.4f %7.1f%% %10.3f %10.3f %10.3f\n",
			r.Category, r.TotalSec, r.Share*100, r.P50*1e3, r.P95*1e3, r.P99*1e3)
	}
	fmt.Fprintf(&b, "  %-14s %12.4f %7.1f%%\n", "total", a.TotalSec, sumShare(a.Rows)*100)
	return b.String()
}

func sumShare(rows []Row) float64 {
	s := 0.0
	for _, r := range rows {
		s += r.Share
	}
	return s
}

// WriteCSV exports the table as CSV with the columns
// category,total_sec,share,p50_sec,p95_sec,p99_sec plus a final total
// row. Output is deterministic for same-seed runs.
func (a Attribution) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	fnum := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	_ = cw.Write([]string{"category", "total_sec", "share", "p50_sec", "p95_sec", "p99_sec"})
	for _, r := range a.Rows {
		_ = cw.Write([]string{r.Category, fnum(r.TotalSec), fnum(r.Share),
			fnum(r.P50), fnum(r.P95), fnum(r.P99)})
	}
	_ = cw.Write([]string{"total", fnum(a.TotalSec), fnum(sumShare(a.Rows)), "", "", ""})
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile exports the table to path.
func (a Attribution) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("span: %w", err)
	}
	werr := a.WriteCSV(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("span: writing %s: %w", path, werr)
	}
	return nil
}
