package span

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"

	"warehousesim/internal/obs"
)

// WriteTrace exports the sink's span stream as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each span
// becomes one complete ("X") event: ts/dur are the span start/duration
// scaled to microseconds (the trace-event unit; simulated seconds for
// DES runs, access-index units for trace replays), tid is the request's
// arrival index — so Perfetto renders one lane per sampled request with
// queue/service/swap slices nested under the request slice — and args
// carry the span/parent IDs for causal navigation.
//
// The writer is hand-rolled rather than encoding/json-driven so the
// object key order and number formatting are fixed: two same-seed runs
// export byte-identical files (the determinism CI step diffs them).
//
// src is anything that holds recorded events and a manifest — in
// practice *obs.Sink, accepted via the interface to keep the consumer
// decoupled from the sink's concrete type.
func WriteTrace(w io.Writer, src TraceSource) error {
	bw := bufio.NewWriter(w)
	m := src.Manifest()
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":%s,\"workload\":%s,\"system\":%s,\"seed\":\"%d\"},\"traceEvents\":[\n",
		quote("warehousesim-trace/v1"), quote(m.Workload), quote(m.System), m.Seed)

	proc := m.Workload
	if m.System != "" {
		proc += "@" + m.System
	}
	if proc == "" {
		proc = "run"
	}
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":%s}}", quote(proc))

	for _, s := range Decoded(src.Events()) {
		bw.WriteString(",\n")
		name := s.Kind
		if s.Res != "" && s.Res != s.Kind && s.Kind != KindRequest {
			name = s.Res + "." + s.Kind
		}
		fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d",
			quote(name), quote(s.Kind), num(s.Start*1e6), num(s.Dur*1e6), s.Req, s.ID, s.Parent)
		if s.Open {
			bw.WriteString(",\"open\":1")
		}
		bw.WriteString("}}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// WriteTraceFile exports the span trace to path.
func WriteTraceFile(path string, src TraceSource) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("span: %w", err)
	}
	werr := WriteTrace(f, src)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("span: writing %s: %w", path, werr)
	}
	return nil
}

// TraceSource is the slice of *obs.Sink the exporters need.
type TraceSource interface {
	Events() []obs.EventRecord
	Manifest() obs.Manifest
}

func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func quote(s string) string { return strconv.Quote(s) }
