// Package span is the causal-tracing layer on top of internal/obs: a
// deterministic span model threaded through the request lifecycle —
// request arrival, per-resource queue wait, service, memory-blade page
// swap (with critical-block-first sub-spans), flash-cache/SAN access —
// plus the consumers that turn recorded spans into artifacts: a
// Chrome-trace-event/Perfetto JSON exporter (WriteTrace) and a
// critical-path latency-attribution analyzer (Analyze).
//
// Spans ride the existing obs.Recorder seam as events on the "span"
// stream, so everything the obs layer guarantees carries over: the
// disabled path is allocation-free (a nil *Tracer no-ops every method
// behind a pointer check), recording never perturbs the simulation (no
// RNG draws, no scheduled events), and exports are byte-identical
// across same-seed runs (deterministic IDs, fixed field order,
// insertion-ordered emission).
//
// Sampling is deterministic too: a Tracer created with every=N keeps
// the span tree of every Nth request by arrival index — no coin flips —
// which keeps full-fidelity traces affordable at millions of requests
// while remaining reproducible.
package span

import (
	"sort"

	"warehousesim/internal/obs"
)

// Stream is the obs event stream that carries span records.
const Stream = "span"

// Span kinds. Kinds drive both the Perfetto category and the
// attribution bucket a span lands in (see Analyze).
const (
	// KindRequest is the root span of one request: arrival (or service
	// start for closed-loop clients) to completion.
	KindRequest = "request"
	// KindQueue is time spent waiting for a free server at a resource.
	KindQueue = "queue"
	// KindService is time occupying a server at a resource.
	KindService = "service"
	// KindSwap is a remote-memory page transfer over the blade link.
	KindSwap = "swap"
	// KindCBF is the critical-block-first sub-span of a swap: the
	// faulting access resumes when the needed block arrives.
	KindCBF = "cbf"
	// KindStorage is a flash-cache or SAN storage access.
	KindStorage = "storage"
)

// Span is one decoded span record.
type Span struct {
	// ID is the tracer-assigned identifier (1-based, dense, in Begin/
	// Emit order). Parent is the enclosing span's ID, 0 for roots.
	ID, Parent int64
	// Req is the arrival index of the request (or access index for the
	// trace-driven simulators) the span belongs to.
	Req int64
	// Kind is one of the Kind* constants; Res names the resource or
	// link ("cpu", "disk", "net", "memblade", "flash", "san", ...).
	Kind, Res string
	// Start and Dur are in the run's time axis units (simulated seconds
	// for DES runs; access index for trace replays).
	Start, Dur float64
	// Open marks a span truncated at the measurement horizon by
	// FlushOpen: Start+Dur is the horizon, not a real completion.
	Open bool
}

// End returns the span's end on its time axis.
func (s Span) End() float64 { return s.Start + s.Dur }

// Tracer records completed spans into an obs.Recorder with
// deterministic IDs and deterministic every-Nth-request sampling. The
// zero of the type is not used: NewTracer returns nil for a disabled
// recorder, and every method no-ops on a nil receiver, so call sites
// need no guards and the disabled path allocates nothing.
type Tracer struct {
	rec    obs.Recorder
	every  int64
	nextID int64
	open   map[int64]Span

	// buf is the emit scratch buffer: span fields are assembled here and
	// handed to the Recorder, which must not retain them (see
	// obs.Recorder) — so steady-state emission allocates nothing.
	buf [7]obs.Field
}

// NewTracer returns a tracer emitting into rec, keeping every Nth
// request by arrival index (every <= 1 keeps all). A nil or disabled
// recorder yields a nil tracer, which is safe to use.
func NewTracer(rec obs.Recorder, every int64) *Tracer {
	if !obs.On(rec) {
		return nil
	}
	if every < 1 {
		every = 1
	}
	return &Tracer{rec: rec, every: every, open: map[int64]Span{}}
}

// NewTracerAt is NewTracer with an explicit ID base: the first span
// gets base+1. Partitioned models (the sharded rack) give each part a
// tracer with a disjoint base so span IDs stay unique — and identical
// at every partitioning — after the parts are merged.
func NewTracerAt(rec obs.Recorder, every, base int64) *Tracer {
	t := NewTracer(rec, every)
	if t != nil {
		t.nextID = base
	}
	return t
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil }

// Every returns the sampling stride (0 on a nil tracer).
func (t *Tracer) Every() int64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Sampled reports whether the request with the given arrival index is
// kept by the sampling rule (index % every == 0). Always false on a
// nil tracer, so it doubles as the hot-path guard.
func (t *Tracer) Sampled(reqIndex int64) bool {
	return t != nil && reqIndex%t.every == 0
}

// Emit records a completed span and returns its ID (0 on a nil
// tracer). Negative durations from floating-point cancellation clamp
// to zero; zero-duration spans are kept — they mark instantaneous
// stages (an empty queue, a zero-byte transfer) that the attribution
// still wants to see.
func (t *Tracer) Emit(parent, req int64, kind, res string, start, end float64) int64 {
	if t == nil {
		return 0
	}
	t.nextID++
	id := t.nextID
	t.emit(Span{ID: id, Parent: parent, Req: req, Kind: kind, Res: res,
		Start: start, Dur: clampDur(start, end)})
	return id
}

// Begin opens a span that will be closed by End — used for root
// request spans whose completion may never come (the run horizon cuts
// them off; FlushOpen emits what remains). Returns the span ID.
func (t *Tracer) Begin(parent, req int64, kind, res string, start float64) int64 {
	if t == nil {
		return 0
	}
	t.nextID++
	id := t.nextID
	t.open[id] = Span{ID: id, Parent: parent, Req: req, Kind: kind, Res: res, Start: start}
	return id
}

// End closes a span opened by Begin and emits it. Ending an unknown or
// already-ended ID is a no-op.
func (t *Tracer) End(id int64, end float64) {
	if t == nil {
		return
	}
	s, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	s.Dur = clampDur(s.Start, end)
	t.emit(s)
}

// OpenCount returns the number of spans begun but not yet ended.
func (t *Tracer) OpenCount() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// FlushOpen emits every still-open span truncated at horizon and
// marked open, in ID order so the export stays deterministic. Call it
// when the measurement window closes with requests still in flight.
func (t *Tracer) FlushOpen(horizon float64) {
	if t == nil || len(t.open) == 0 {
		return
	}
	ids := make([]int64, 0, len(t.open))
	for id := range t.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := t.open[id]
		delete(t.open, id)
		s.Dur = clampDur(s.Start, horizon)
		s.Open = true
		t.emit(s)
	}
}

// emit writes one span record to the event stream. Field order is
// fixed (id, parent, req, kind, res, dur, open) so Decode and the
// exporters see a stable layout.
func (t *Tracer) emit(s Span) {
	b := append(t.buf[:0],
		obs.F("id", float64(s.ID)), obs.F("parent", float64(s.Parent)),
		obs.F("req", float64(s.Req)), obs.FS("kind", s.Kind), obs.FS("res", s.Res),
		obs.F("dur", s.Dur))
	if s.Open {
		b = append(b, obs.FB("open", true))
	}
	t.rec.Event(Stream, s.Start, b...)
}

func clampDur(start, end float64) float64 {
	if end < start {
		return 0
	}
	return end - start
}

// Decode parses an obs event record back into a Span. ok is false when
// the record is not from the span stream.
func Decode(e obs.EventRecord) (s Span, ok bool) {
	if e.Stream != Stream {
		return Span{}, false
	}
	s.Start = e.T
	for _, f := range e.Fields {
		switch f.Key {
		case "id":
			s.ID = int64(f.Num)
		case "parent":
			s.Parent = int64(f.Num)
		case "req":
			s.Req = int64(f.Num)
		case "kind":
			s.Kind = f.Str
		case "res":
			s.Res = f.Str
		case "dur":
			s.Dur = f.Num
		case "open":
			s.Open = f.Num != 0
		}
	}
	return s, true
}

// Decoded returns all spans recorded in the sink, in emission order.
func Decoded(events []obs.EventRecord) []Span {
	var out []Span
	for _, e := range events {
		if s, ok := Decode(e); ok {
			out = append(out, s)
		}
	}
	return out
}
