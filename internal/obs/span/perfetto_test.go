package span

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"warehousesim/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSink builds a tiny fixed span set covering every record shape
// the exporter emits: nested spans, a swap with CBF detail, an empty
// resource name, and an open span truncated at the horizon.
func goldenSink() *obs.Sink {
	sink := obs.NewSink()
	man := obs.NewManifest("websearch", "emb1", 7)
	man.GoVersion = "gotest" // pin: golden must not move with toolchains
	sink.SetManifest(man)

	tr := NewTracer(sink, 1)
	root := tr.Begin(0, 0, KindRequest, "request", 0.001)
	tr.Emit(root, 0, KindQueue, "cpu", 0.001, 0.0015)
	svc := tr.Emit(root, 0, KindService, "cpu", 0.0015, 0.004)
	swap := tr.Emit(svc, 0, KindSwap, "memblade", 0.0015, 0.002)
	tr.Emit(swap, 0, KindCBF, "", 0.0015, 0.00155)
	tr.End(root, 0.004)
	tr.Begin(0, 1, KindRequest, "request", 0.0035)
	tr.FlushOpen(0.005)
	return sink
}

func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenSink()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestWriteTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenSink()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Schema   string `json:"schema"`
			Workload string `json:"workload"`
			Seed     string `json:"seed"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int64   `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	if doc.OtherData.Schema != "warehousesim-trace/v1" {
		t.Errorf("schema = %q", doc.OtherData.Schema)
	}
	// Metadata event plus the six spans of goldenSink.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d trace events, want 7", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" {
		t.Errorf("first event is %q, want process_name metadata", doc.TraceEvents[0].Ph)
	}
	for _, e := range doc.TraceEvents[1:] {
		if e.Ph != "X" {
			t.Errorf("span event ph = %q, want X", e.Ph)
		}
		if e.Dur < 0 {
			t.Errorf("span %v has negative dur", e.Args["id"])
		}
	}
	// ts/dur are microseconds: the completed root span is 3 ms = 3000 us.
	// Roots are emitted at End time, so find it by name.
	var rootDur float64 = -1
	for _, e := range doc.TraceEvents {
		if e.Name == "request" && e.Args["open"] == nil {
			rootDur = e.Dur
		}
	}
	if rootDur != 3000 {
		t.Errorf("root dur = %g us, want 3000", rootDur)
	}
	// The open span carries the open marker in args.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Args["open"] != float64(1) {
		t.Errorf("horizon-truncated span lacks open marker: %v", last.Args)
	}
}

func TestWriteTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTrace(&a, goldenSink()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, goldenSink()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical sinks exported different traces")
	}
}
