package window

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"warehousesim/internal/obs"
)

func mustNew(t *testing.T, cfg Config) *Collector {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.95}, true},
		{"no-bound", Config{WidthSec: 2}, true},
		{"zero-width", Config{WidthSec: 0}, false},
		{"negative-width", Config{WidthSec: -1}, false},
		{"nan-width", Config{WidthSec: math.NaN()}, false},
		{"inf-width", Config{WidthSec: math.Inf(1)}, false},
		{"negative-bound", Config{WidthSec: 1, QoSLatencySec: -0.1}, false},
		{"percentile-zero", Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0}, false},
		{"percentile-one", Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 1}, false},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: New(%+v) err=%v, want ok=%v", tc.name, tc.cfg, err, tc.ok)
		}
	}
}

func TestWindowAccumulationAndSummaries(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, QoSLatencySec: 0.5, QoSPercentile: 0.95})
	// Window 0: two fast requests; window 2: one slow (violating).
	c.ObserveLatency(0.25, 0.010, false)
	c.ObserveLatency(0.75, 0.020, false)
	c.SampleUtil("cpu", 0.5, 0.4)
	c.SampleUtil("cpu", 0.9, 0.6)
	c.Track("memblade.hit_rate", 0.5, 0.8)
	c.ObserveLatency(2.25, 0.9, true)
	c.Seal(2.5)

	ws := c.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2 (empty window 1 is not materialized)", len(ws))
	}
	w0 := ws[0]
	if w0.Index != 0 || w0.T0 != 0 || w0.T1 != 1 {
		t.Errorf("window 0 span = [%g,%g) idx %d", w0.T0, w0.T1, w0.Index)
	}
	if w0.Requests != 2 || w0.Violations != 0 || w0.Throughput != 2 {
		t.Errorf("window 0 = %+v", w0)
	}
	if w0.Violating {
		t.Error("window 0 should not violate")
	}
	if got := w0.Util["cpu"]; got != 0.5 {
		t.Errorf("window 0 cpu util mean = %g, want 0.5", got)
	}
	if got := w0.Tracks["memblade.hit_rate"]; got != 0.8 {
		t.Errorf("window 0 track = %g, want 0.8", got)
	}
	w2 := ws[1]
	if w2.Index != 2 {
		t.Fatalf("second sealed window has index %d, want 2", w2.Index)
	}
	if w2.T1 != 2.5 {
		t.Errorf("final window T1 = %g, want horizon clamp 2.5", w2.T1)
	}
	if !w2.Violating || w2.Violations != 1 {
		t.Errorf("window 2 = %+v, want violating", w2)
	}
	if w2.QLat <= 0.5 {
		t.Errorf("window 2 QLat = %g, want > bound", w2.QLat)
	}
	if w2.Throughput != 1/0.5 {
		t.Errorf("partial window throughput = %g, want 2 (1 req over 0.5 s)", w2.Throughput)
	}
}

// TestMergeMatchesSingle: splitting a stream across parts and merging
// must reproduce the single-collector export byte for byte — the
// partition-independence property the shards/par CI gates rely on.
func TestMergeMatchesSingle(t *testing.T) {
	cfg := Config{WidthSec: 1, QoSLatencySec: 0.25, QoSPercentile: 0.95}
	type ob struct {
		part int
		t    float64
		lat  float64
	}
	// Dyadic values so float accumulation order cannot matter.
	log := []ob{
		{0, 0.25, 0.125}, {1, 0.5, 0.5}, {0, 1.25, 0.0625},
		{1, 1.5, 0.75}, {1, 2.25, 0.5}, {0, 2.75, 0.5},
		{0, 3.25, 0.125}, {1, 3.5, 0.0625},
	}
	build := func(split bool) *Collector {
		parts := []*Collector{mustNew(t, cfg), mustNew(t, cfg)}
		single := mustNew(t, cfg)
		for _, o := range log {
			dst := single
			if split {
				dst = parts[o.part]
			}
			dst.ObserveLatency(o.t, o.lat, o.lat > cfg.QoSLatencySec)
			dst.SampleUtil("cpu", o.t, o.lat*0.5)
		}
		if !split {
			single.Seal(4)
			return single
		}
		for _, p := range parts {
			p.Seal(4)
		}
		out := mustNew(t, cfg)
		out.MergeFrom(parts...)
		return out
	}
	want, got := build(false), build(true)
	var wb, gb bytes.Buffer
	if err := want.WriteJSONL(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSONL(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Errorf("merged export differs from single-collector export:\n--- single\n%s\n--- merged\n%s", wb.String(), gb.String())
	}
}

func TestMergePanics(t *testing.T) {
	cfg := Config{WidthSec: 1}
	c := mustNew(t, cfg)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("self-merge", func() { c.MergeFrom(c) })
	other := mustNew(t, Config{WidthSec: 2})
	expectPanic("config-mismatch", func() { c.MergeFrom(other) })
	open := mustNew(t, cfg)
	open.ObserveLatency(0.5, 0.1, false)
	expectPanic("unsealed-part", func() { c.MergeFrom(open) })
}

func TestMergeEmptyPart(t *testing.T) {
	cfg := Config{WidthSec: 1}
	a, empty := mustNew(t, cfg), mustNew(t, cfg)
	a.ObserveLatency(0.5, 0.25, false)
	a.Seal(1)
	empty.Seal(1)
	out := mustNew(t, cfg)
	out.MergeFrom(a, empty)
	ws := out.Windows()
	if len(ws) != 1 || ws[0].Requests != 1 {
		t.Fatalf("merge with empty part: %+v", ws)
	}
}

func TestEpisodes(t *testing.T) {
	cfg := Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.95}
	c := mustNew(t, cfg)
	// Windows 0-1 violate, window 2 ok, window 4 violates (gap at 3).
	c.ObserveLatency(0.5, 0.5, true)
	c.ObserveLatency(1.5, 0.25, true)
	c.ObserveLatency(2.5, 0.01, false)
	c.ObserveLatency(4.5, 0.5, true)
	c.Seal(5)
	eps := c.Episodes()
	if len(eps) != 2 {
		t.Fatalf("got %d episodes, want 2: %+v", len(eps), eps)
	}
	e0 := eps[0]
	if e0.StartSec != 0 || e0.EndSec != 2 || e0.Windows != 2 {
		t.Errorf("episode 0 = %+v, want [0,2) over 2 windows", e0)
	}
	if e0.DurationSec() != 2 {
		t.Errorf("episode 0 duration = %g", e0.DurationSec())
	}
	if e0.PeakLatencySec < 0.5 || e0.PeakExcessSec <= 0 {
		t.Errorf("episode 0 peak = %+v", e0)
	}
	if eps[1].StartSec != 4 || eps[1].EndSec != 5 {
		t.Errorf("episode 1 = %+v", eps[1])
	}
	if got := ViolationSec(eps); got != 3 {
		t.Errorf("ViolationSec = %g, want 3", got)
	}
	if e0.AffectedParts != 1 {
		t.Errorf("partless episode affected = %d, want 1", e0.AffectedParts)
	}
}

// TestEpisodeGapSplitsAtEmptyWindows: an episode must not bridge a
// stretch of windows with no requests — empty windows never violate.
func TestEpisodeGapSplitsAtEmptyWindows(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.9})
	c.ObserveLatency(0.5, 1, true)
	c.ObserveLatency(5.5, 1, true) // windows 1..4 empty
	c.Seal(6)
	eps := c.Episodes()
	if len(eps) != 2 {
		t.Fatalf("got %d episodes, want 2 split by the idle gap", len(eps))
	}
}

func TestEpisodesAffectedParts(t *testing.T) {
	cfg := Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.9}
	p0, p1 := mustNew(t, cfg), mustNew(t, cfg)
	// Both parts violate in window 0; only p0 violates in window 1.
	p0.ObserveLatency(0.5, 1, true)
	p1.ObserveLatency(0.5, 1, true)
	p0.ObserveLatency(1.5, 1, true)
	p1.ObserveLatency(1.5, 0.01, false)
	p0.Seal(2)
	p1.Seal(2)
	merged := mustNew(t, cfg)
	merged.MergeFrom(p0, p1)
	eps := merged.Episodes(p0, p1)
	if len(eps) != 1 {
		t.Fatalf("got %d episodes, want 1", len(eps))
	}
	if eps[0].AffectedParts != 2 {
		t.Errorf("affected parts = %d, want 2", eps[0].AffectedParts)
	}
}

func TestNoEpisodesWithoutBound(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1})
	c.ObserveLatency(0.5, 100, false)
	c.Seal(1)
	if eps := c.Episodes(); eps != nil {
		t.Fatalf("unbounded config produced episodes: %+v", eps)
	}
	if w := c.Windows(); w[0].Violating || w[0].QLat != 0 {
		t.Errorf("unbounded window = %+v", w[0])
	}
}

func TestEmitEpisodes(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.9})
	c.ObserveLatency(0.5, 1, true)
	c.ObserveLatency(1.5, 0.01, false)
	c.Seal(2)
	sink := obs.NewSink()
	eps := c.Episodes()
	c.EmitEpisodes(sink, eps)
	if got := sink.CounterValue("slo.windows"); got != 2 {
		t.Errorf("slo.windows = %d, want 2", got)
	}
	if got := sink.CounterValue("slo.windows_violating"); got != 1 {
		t.Errorf("slo.windows_violating = %d, want 1", got)
	}
	if got := sink.CounterValue("slo.episodes"); got != 1 {
		t.Errorf("slo.episodes = %d, want 1", got)
	}
	if got := sink.EventCount("slo_episode"); got != 2 {
		t.Errorf("slo_episode events = %d, want begin+end", got)
	}
	if h := sink.HistByName("slo.episode_sec"); h == nil || h.Count() != 1 {
		t.Errorf("slo.episode_sec hist = %+v", h)
	}
	// Nil/disabled recorders are a no-op.
	c.EmitEpisodes(nil, eps)
	c.EmitEpisodes(obs.Nop{}, eps)
}

func TestLiveSummaries(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1})
	if got := c.LiveSummaries(); got != nil {
		t.Fatalf("live summaries before any seal: %v", got)
	}
	c.ObserveLatency(0.5, 0.1, false)
	if got := c.LiveSummaries(); len(got) != 0 {
		t.Fatalf("open window leaked into live view: %v", got)
	}
	c.ObserveLatency(1.5, 0.1, false) // seals window 0
	live := c.LiveSummaries()
	if len(live) != 1 || live[0].Index != 0 || live[0].Requests != 1 {
		t.Fatalf("live after first seal = %+v", live)
	}
	c.Seal(2)
	if got := c.LiveSummaries(); len(got) != 2 {
		t.Fatalf("live after Seal = %d windows, want 2", len(got))
	}
}

func TestWriteJSONLShape(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.9})
	c.ObserveLatency(0.5, 1, true)
	c.Seal(1)
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want manifest+window+episode:\n%s", len(lines), buf.String())
	}
	var man map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &man); err != nil {
		t.Fatal(err)
	}
	if man["schema"] != SchemaSLO || man["type"] != "slo_manifest" {
		t.Errorf("manifest = %v", man)
	}
	var wl map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &wl); err != nil {
		t.Fatal(err)
	}
	if wl["type"] != "window" || wl["requests"] != 1.0 {
		t.Errorf("window line = %v", wl)
	}
	var el map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &el); err != nil {
		t.Fatal(err)
	}
	if el["type"] != "episode" || el["duration_sec"] != 1.0 {
		t.Errorf("episode line = %v", el)
	}
}

func TestWriteFile(t *testing.T) {
	c := mustNew(t, Config{WidthSec: 1})
	c.ObserveLatency(0.5, 0.1, false)
	c.Seal(1)
	path := t.TempDir() + "/slo.jsonl"
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, buf.Bytes()) {
		t.Error("WriteFile and WriteJSONL disagree")
	}
	if err := c.WriteFile(t.TempDir() + "/nope/slo.jsonl"); err == nil {
		t.Error("WriteFile into a missing directory should fail")
	}
}

func TestLiveSnapshot(t *testing.T) {
	cfg := Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.9}
	p0, p1 := mustNew(t, cfg), mustNew(t, cfg)
	p0.ObserveLatency(0.5, 0.2, true)
	p0.ObserveLatency(1.5, 0.01, false) // seals window 0
	b, err := LiveSnapshot([]*Collector{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema   string  `json:"schema"`
		WidthSec float64 `json:"width_sec"`
		Parts    []struct {
			Part    int `json:"part"`
			Sealed  int `json:"sealed"`
			Windows []Summary
		} `json:"parts"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid snapshot JSON: %v\n%s", err, b)
	}
	if doc.Schema != SchemaLive || doc.WidthSec != 1 {
		t.Errorf("snapshot header = %+v", doc)
	}
	if len(doc.Parts) != 2 || doc.Parts[0].Sealed != 1 || len(doc.Parts[1].Windows) != 0 {
		t.Errorf("snapshot parts = %+v", doc.Parts)
	}
	// Zero parts still yields a valid document.
	if b, err = LiveSnapshot(nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Errorf("empty snapshot invalid: %s", b)
	}
}

func TestTeeRouting(t *testing.T) {
	cfg := Config{WidthSec: 1, QoSLatencySec: 0.1, QoSPercentile: 0.9}
	c := mustNew(t, cfg)
	sink := obs.NewSink()
	rec := NewTee(sink, c)
	if !rec.Enabled() {
		t.Fatal("tee over an enabled sink must be enabled")
	}
	rec.Count("requests", 1)
	rec.Observe("latency_sec", 0.25)
	rec.Gauge("util.cpu.e0.b1", 0.5, 0.75)
	rec.Gauge("qlen.cpu.e0.b1", 0.5, 3) // not routed
	rec.Gauge("memblade.hit_rate", 0.5, 0.9)
	rec.Event("request", 0.5, obs.F("latency_sec", 0.25), obs.FB("qos_violation", true), obs.FB("measured", true))
	rec.Event("span", 0.6, obs.F("id", 1)) // not routed
	c.Seal(1)

	// Inner sink saw everything unchanged.
	if sink.CounterValue("requests") != 1 || sink.EventCount("request") != 1 || sink.EventCount("span") != 1 {
		t.Error("tee did not forward to the inner recorder")
	}
	if sink.SeriesByName("util.cpu.e0.b1") == nil || sink.SeriesByName("qlen.cpu.e0.b1") == nil {
		t.Error("tee did not forward gauges")
	}
	ws := c.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %+v", ws)
	}
	w := ws[0]
	if w.Requests != 1 || w.Violations != 1 {
		t.Errorf("request event not routed: %+v", w)
	}
	if got := w.Util["cpu"]; got != 0.75 {
		t.Errorf("util class routing: cpu = %g, want 0.75 (from util.cpu.e0.b1)", got)
	}
	if _, ok := w.Util["qlen"]; ok {
		t.Error("qlen gauge leaked into util classes")
	}
	if got := w.Tracks["memblade.hit_rate"]; got != 0.9 {
		t.Errorf("hit-rate track = %g, want 0.9", got)
	}
	// NewTee with a nil collector is the identity.
	if r := NewTee(sink, nil); r != obs.Recorder(sink) {
		t.Error("NewTee(nil collector) should return the inner recorder")
	}
}
