// Package window provides virtual-time windowed SLO metrics: fixed
// width tumbling windows over simulated time, each holding a
// log-bucketed latency histogram (p50/p95/p99), request and QoS
// violation counts, per-resource-class utilization, and named ratio
// tracks (remote-memory / flash hit rates), plus a QoS episode
// detector that reduces consecutive violating windows to begin/end
// events with duration and peak excess.
//
// Windows are tumbling, not sliding, on purpose: a tumbling window at
// index floor(t/width) is a pure function of the observation time, so
// two partitions of the same run assign every observation to the same
// window — merging per-partition collectors (MergeFrom, in fixed part
// order, exactly like obs.Sink.MergeFrom) reproduces the single
// collector byte for byte at any shard or parallelism count. A sliding
// window's contents depend on when it is evaluated, which is a
// wall-clock notion the deterministic export must not see.
//
// Like package obs, this package is stdlib-only so any simulator layer
// can feed a Collector without import cycles; the latency histograms
// reuse obs.Hist, whose fixed bucket layout makes window merges exact.
package window

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"warehousesim/internal/obs"
)

// Config sizes a Collector.
type Config struct {
	// WidthSec is the tumbling window width in simulated seconds (> 0).
	WidthSec float64
	// QoSLatencySec is the latency bound the episode detector checks the
	// QoSPercentile against; 0 disables episode detection (windows are
	// still collected).
	QoSLatencySec float64
	// QoSPercentile is the quantile compared against QoSLatencySec,
	// e.g. 0.95. Must be in (0,1) when QoSLatencySec > 0.
	QoSPercentile float64
}

func (c Config) validate() error {
	if !(c.WidthSec > 0) || math.IsInf(c.WidthSec, 0) {
		return fmt.Errorf("window: width must be positive and finite, got %g", c.WidthSec)
	}
	if c.QoSLatencySec < 0 {
		return fmt.Errorf("window: negative QoS bound %g", c.QoSLatencySec)
	}
	if c.QoSLatencySec > 0 && (c.QoSPercentile <= 0 || c.QoSPercentile >= 1) {
		return fmt.Errorf("window: QoS percentile %g outside (0,1)", c.QoSPercentile)
	}
	return nil
}

// win is one tumbling window's accumulators. Latency lives in an exact
// mergeable histogram; utilization and tracks keep (sum, count) pairs
// so merged means are sums-of-sums — order-independent up to the fixed
// part fold order.
type win struct {
	index      int64
	lat        obs.Hist
	requests   int64
	violations int64
	utilSum    map[string]float64
	utilN      map[string]int64
	trackSum   map[string]float64
	trackN     map[string]int64
}

func newWin(index int64) *win {
	return &win{index: index}
}

func (w *win) mergeFrom(o *win) {
	w.lat.Merge(&o.lat)
	w.requests += o.requests
	w.violations += o.violations
	for k, v := range o.utilSum {
		if w.utilSum == nil {
			w.utilSum, w.utilN = map[string]float64{}, map[string]int64{}
		}
		w.utilSum[k] += v
		w.utilN[k] += o.utilN[k]
	}
	for k, v := range o.trackSum {
		if w.trackSum == nil {
			w.trackSum, w.trackN = map[string]float64{}, map[string]int64{}
		}
		w.trackSum[k] += v
		w.trackN[k] += o.trackN[k]
	}
}

// Summary is the exported view of one sealed window. T1 is clamped to
// the seal horizon, so the final partial window reports its true span.
type Summary struct {
	Index      int64   `json:"i"`
	T0         float64 `json:"t0"`
	T1         float64 `json:"t1"`
	Requests   int64   `json:"requests"`
	Violations int64   `json:"violations"`
	// Throughput is Requests over the window's actual span.
	Throughput float64 `json:"throughput"`
	P50        float64 `json:"p50"`
	P95        float64 `json:"p95"`
	P99        float64 `json:"p99"`
	// QLat is the latency at the configured QoS percentile; Violating
	// reports QLat > QoSLatencySec (always false without a bound or
	// without requests).
	QLat      float64            `json:"qos_latency"`
	Violating bool               `json:"violating"`
	Util      map[string]float64 `json:"util,omitempty"`
	Tracks    map[string]float64 `json:"tracks,omitempty"`
}

func (c *Collector) summarize(w *win) Summary {
	width := c.cfg.WidthSec
	t0 := float64(w.index) * width
	t1 := t0 + width
	if c.horizon > 0 && t1 > c.horizon {
		t1 = c.horizon
	}
	s := Summary{
		Index: w.index, T0: t0, T1: t1,
		Requests: w.requests, Violations: w.violations,
		P50: w.lat.Quantile(0.50), P95: w.lat.Quantile(0.95), P99: w.lat.Quantile(0.99),
	}
	if span := t1 - t0; span > 0 {
		s.Throughput = float64(w.requests) / span
	}
	if c.cfg.QoSLatencySec > 0 {
		s.QLat = w.lat.Quantile(c.cfg.QoSPercentile)
		s.Violating = w.requests > 0 && s.QLat > c.cfg.QoSLatencySec
	}
	if len(w.utilSum) > 0 {
		s.Util = make(map[string]float64, len(w.utilSum))
		for k, sum := range w.utilSum {
			s.Util[k] = sum / float64(w.utilN[k])
		}
	}
	if len(w.trackSum) > 0 {
		s.Tracks = make(map[string]float64, len(w.trackSum))
		for k, sum := range w.trackSum {
			s.Tracks[k] = sum / float64(w.trackN[k])
		}
	}
	return s
}

// Collector accumulates one partition's windowed metrics. It is
// single-threaded like obs.Sink — owned by the goroutine of the shard
// whose entities feed it — except for LiveSummaries, which readers on
// other goroutines may call concurrently with the owner (sealed-window
// summaries are published through an atomic copy-on-write slice).
type Collector struct {
	cfg     Config
	cur     *win
	sealed  []*win
	horizon float64 // set by Seal; clamps the last window's T1

	live atomic.Pointer[[]Summary]
}

// New builds a Collector; the config is validated (positive width, QoS
// percentile in (0,1) when a bound is set).
func New(cfg Config) (*Collector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Collector{cfg: cfg}, nil
}

// Config returns the collector's configuration.
func (c *Collector) Config() Config { return c.cfg }

// at returns the open window for time t, sealing the previous one when
// t crosses a window boundary. Observation times must be nondecreasing
// (true for anything recorded on a simulated clock); a stale time is
// clamped into the open window rather than reopening a sealed one.
func (c *Collector) at(t float64) *win {
	idx := int64(math.Floor(t / c.cfg.WidthSec))
	if c.cur == nil {
		c.cur = newWin(idx)
		return c.cur
	}
	if idx <= c.cur.index {
		return c.cur
	}
	c.seal()
	c.cur = newWin(idx)
	return c.cur
}

// seal moves the open window to the sealed list and publishes its
// summary to the live view.
func (c *Collector) seal() {
	if c.cur == nil {
		return
	}
	c.sealed = append(c.sealed, c.cur)
	old := c.live.Load()
	var next []Summary
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, c.summarize(c.cur))
	c.live.Store(&next)
	c.cur = nil
}

// ObserveLatency records one completed request at simulated time t.
func (c *Collector) ObserveLatency(t, latencySec float64, violation bool) {
	w := c.at(t)
	w.lat.Add(latencySec)
	w.requests++
	if violation {
		w.violations++
	}
}

// SampleUtil records one utilization sample for a resource class
// ("cpu", "net", ...); the window reports the mean of its samples.
func (c *Collector) SampleUtil(class string, t, util float64) {
	w := c.at(t)
	if w.utilSum == nil {
		w.utilSum, w.utilN = map[string]float64{}, map[string]int64{}
	}
	w.utilSum[class] += util
	w.utilN[class]++
}

// Track records one sample of a named ratio track (e.g. a remote
// memory or flash-cache hit rate); the window reports the mean.
func (c *Collector) Track(name string, t, v float64) {
	w := c.at(t)
	if w.trackSum == nil {
		w.trackSum, w.trackN = map[string]float64{}, map[string]int64{}
	}
	w.trackSum[name] += v
	w.trackN[name]++
}

// Seal closes the open window at the end of a run. horizon, when > 0,
// clamps the final window's T1 (and the episode end times) to the
// run's actual end, so a partial last window reports its true span.
// Safe to call with no open window; further observations after Seal
// reopen accumulation (not expected in normal use).
func (c *Collector) Seal(horizon float64) {
	if horizon > 0 && (c.horizon == 0 || horizon < c.horizon) {
		c.horizon = horizon
	}
	c.seal()
}

// Windows returns the sealed windows' summaries in index order.
func (c *Collector) Windows() []Summary {
	out := make([]Summary, len(c.sealed))
	for i, w := range c.sealed {
		out[i] = c.summarize(w)
	}
	return out
}

// LiveSummaries returns the sealed windows' summaries as of the last
// seal. Unlike every other method it is safe to call concurrently with
// the owning goroutine — the live-introspection reader's entry point.
func (c *Collector) LiveSummaries() []Summary {
	if p := c.live.Load(); p != nil {
		return *p
	}
	return nil
}

// MergeFrom folds the parts' sealed windows into c, index-aligned, in
// argument order. The part order must be fixed by the model (enclosure
// order), never by the partitioning — the same discipline as
// obs.Sink.MergeFrom — so the merged collector is byte-identical at
// any shard count. Parts must share c's config and must be sealed;
// merging a collector into itself panics.
func (c *Collector) MergeFrom(parts ...*Collector) {
	for _, p := range parts {
		if p == c {
			panic("window: Collector.MergeFrom cannot merge a collector into itself")
		}
		if p.cfg != c.cfg {
			panic(fmt.Sprintf("window: MergeFrom config mismatch: %+v vs %+v", p.cfg, c.cfg))
		}
		if p.cur != nil {
			panic("window: MergeFrom of an unsealed collector; call Seal first")
		}
		if p.horizon > 0 && (c.horizon == 0 || p.horizon < c.horizon) {
			c.horizon = p.horizon
		}
	}
	byIndex := map[int64]*win{}
	for _, w := range c.sealed {
		byIndex[w.index] = w
	}
	for _, p := range parts {
		for _, pw := range p.sealed {
			w := byIndex[pw.index]
			if w == nil {
				w = newWin(pw.index)
				byIndex[pw.index] = w
			}
			w.mergeFrom(pw)
		}
	}
	indices := make([]int64, 0, len(byIndex))
	for i := range byIndex {
		indices = append(indices, i)
	}
	sort.Slice(indices, func(a, b int) bool { return indices[a] < indices[b] })
	c.sealed = c.sealed[:0]
	for _, i := range indices {
		c.sealed = append(c.sealed, byIndex[i])
	}
	var summaries []Summary
	for _, w := range c.sealed {
		summaries = append(summaries, c.summarize(w))
	}
	c.live.Store(&summaries)
}
