package window

import "warehousesim/internal/obs"

// Episode is one QoS violation episode: a maximal run of consecutive
// violating windows (the configured percentile of the window's latency
// histogram exceeded the QoS bound).
type Episode struct {
	// StartSec and EndSec bound the episode in simulated time (window
	// edges; EndSec is clamped to the seal horizon).
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	// Windows is the number of violating windows in the episode.
	Windows int `json:"windows"`
	// PeakLatencySec is the worst per-window QoS-percentile latency, and
	// PeakExcessSec how far it exceeded the bound.
	PeakLatencySec float64 `json:"peak_latency_sec"`
	PeakExcessSec  float64 `json:"peak_excess_sec"`
	// Requests and Violations total over the episode's windows.
	Requests   int64 `json:"requests"`
	Violations int64 `json:"violations"`
	// AffectedParts is how many of the per-partition collectors (the
	// enclosures of a rack run) had at least one violating window inside
	// the episode; 1 for single-part (flat) runs.
	AffectedParts int `json:"affected_parts"`
}

// DurationSec is the episode's length in simulated seconds.
func (e Episode) DurationSec() float64 { return e.EndSec - e.StartSec }

// Episodes reduces the collector's sealed windows to QoS violation
// episodes: consecutive window indices whose QoS-percentile latency
// exceeds the bound. parts, when given, are the per-partition
// collectors the merged windows came from (in the same fixed order as
// MergeFrom) and attribute how many partitions each episode touched;
// without parts every episode reports one affected part. Returns nil
// when no QoS bound is configured.
func (c *Collector) Episodes(parts ...*Collector) []Episode {
	if c.cfg.QoSLatencySec <= 0 {
		return nil
	}
	var eps []Episode
	var cur *Episode
	var prevIdx int64
	for _, w := range c.sealed {
		s := c.summarize(w)
		if !s.Violating {
			if cur != nil {
				eps = append(eps, *cur)
				cur = nil
			}
			continue
		}
		if cur != nil && w.index == prevIdx+1 {
			cur.EndSec = s.T1
			cur.Windows++
			cur.Requests += s.Requests
			cur.Violations += s.Violations
			if s.QLat > cur.PeakLatencySec {
				cur.PeakLatencySec = s.QLat
				cur.PeakExcessSec = s.QLat - c.cfg.QoSLatencySec
			}
		} else {
			if cur != nil {
				eps = append(eps, *cur)
			}
			cur = &Episode{
				StartSec: s.T0, EndSec: s.T1, Windows: 1,
				PeakLatencySec: s.QLat, PeakExcessSec: s.QLat - c.cfg.QoSLatencySec,
				Requests: s.Requests, Violations: s.Violations,
			}
		}
		prevIdx = w.index
	}
	if cur != nil {
		eps = append(eps, *cur)
	}
	for i := range eps {
		eps[i].AffectedParts = affectedParts(eps[i], parts)
	}
	return eps
}

// affectedParts counts the partitions with a violating window inside
// the episode's span.
func affectedParts(e Episode, parts []*Collector) int {
	if len(parts) == 0 {
		return 1
	}
	n := 0
	for _, p := range parts {
		for _, w := range p.sealed {
			s := p.summarize(w)
			if s.Violating && s.T0 < e.EndSec && s.T1 > e.StartSec {
				n++
				break
			}
		}
	}
	return n
}

// ViolationSec sums the durations of the given episodes.
func ViolationSec(eps []Episode) float64 {
	var s float64
	for _, e := range eps {
		s += e.DurationSec()
	}
	return s
}

// EmitEpisodes writes the windowed-SLO summary into the deterministic
// recorder stream: slo.* counters plus one begin and one end
// "slo_episode" event per episode. Everything emitted is computed from
// the merged collector, so the stream is identical at every shard and
// parallelism count. Call after Seal/MergeFrom.
func (c *Collector) EmitEpisodes(rec obs.Recorder, eps []Episode) {
	if !obs.On(rec) {
		return
	}
	violating := int64(0)
	for _, w := range c.sealed {
		if c.summarize(w).Violating {
			violating++
		}
	}
	rec.Count("slo.windows", int64(len(c.sealed)))
	rec.Count("slo.windows_violating", violating)
	rec.Count("slo.episodes", int64(len(eps)))
	for _, e := range eps {
		rec.Observe("slo.episode_sec", e.DurationSec())
		rec.Event("slo_episode", e.StartSec,
			obs.FS("phase", "begin"),
			obs.F("windows", float64(e.Windows)),
			obs.F("affected_parts", float64(e.AffectedParts)))
		rec.Event("slo_episode", e.EndSec,
			obs.FS("phase", "end"),
			obs.F("duration_sec", e.DurationSec()),
			obs.F("windows", float64(e.Windows)),
			obs.F("peak_latency_sec", e.PeakLatencySec),
			obs.F("peak_excess_sec", e.PeakExcessSec),
			obs.F("violations", float64(e.Violations)),
			obs.F("affected_parts", float64(e.AffectedParts)))
	}
}
