package window

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaSLO identifies the -slo-out JSONL export.
const SchemaSLO = "warehousesim-slo/v1"

// SchemaLive identifies the /obs/windows live snapshot document.
const SchemaLive = "warehousesim-windows/v1"

// sloManifest is the export's first line: the window configuration and
// run totals. It deliberately carries no shard or parallelism count,
// so the whole file — not just a body — is byte-identical across
// -shards and -par values at the same seed.
type sloManifest struct {
	Type             string  `json:"type"`
	Schema           string  `json:"schema"`
	WidthSec         float64 `json:"width_sec"`
	QoSLatencySec    float64 `json:"qos_latency_sec,omitempty"`
	QoSPercentile    float64 `json:"qos_percentile,omitempty"`
	Windows          int     `json:"windows"`
	ViolatingWindows int     `json:"violating_windows"`
	Episodes         int     `json:"episodes"`
	ViolationSec     float64 `json:"violation_sec"`
}

type windowLine struct {
	Type string `json:"type"`
	Summary
}

type episodeLine struct {
	Type        string  `json:"type"`
	DurationSec float64 `json:"duration_sec"`
	Episode
}

// WriteJSONL writes the sealed windows and episodes as JSONL: one
// slo_manifest line, one window line per sealed window in index order,
// one episode line per QoS episode. Maps marshal with sorted keys and
// the window fold order is fixed, so the output is deterministic.
// parts (optional) attribute episode blast radius; see Episodes.
func (c *Collector) WriteJSONL(w io.Writer, parts ...*Collector) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	eps := c.Episodes(parts...)
	sums := c.Windows()
	violating := 0
	for _, s := range sums {
		if s.Violating {
			violating++
		}
	}
	if err := enc.Encode(sloManifest{
		Type: "slo_manifest", Schema: SchemaSLO,
		WidthSec: c.cfg.WidthSec, QoSLatencySec: c.cfg.QoSLatencySec,
		QoSPercentile: c.cfg.QoSPercentile,
		Windows:       len(sums), ViolatingWindows: violating,
		Episodes: len(eps), ViolationSec: ViolationSec(eps),
	}); err != nil {
		return err
	}
	for _, s := range sums {
		if err := enc.Encode(windowLine{Type: "window", Summary: s}); err != nil {
			return err
		}
	}
	for _, e := range eps {
		if err := enc.Encode(episodeLine{Type: "episode", DurationSec: e.DurationSec(), Episode: e}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the JSONL export to path.
func (c *Collector) WriteFile(path string, parts ...*Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("window: %w", err)
	}
	if err := c.WriteJSONL(f, parts...); err != nil {
		f.Close()
		return fmt.Errorf("window: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("window: close %s: %w", path, err)
	}
	return nil
}

// liveDoc is the /obs/windows snapshot: per-part sealed-window
// summaries as of the last seal. Live views are per part — merged
// percentiles need the histograms, which only the post-run fold sees —
// so a watcher follows each partition's recent tail and the -slo-out
// export carries the merged truth.
type liveDoc struct {
	Schema        string     `json:"schema"`
	WidthSec      float64    `json:"width_sec"`
	QoSLatencySec float64    `json:"qos_latency_sec,omitempty"`
	QoSPercentile float64    `json:"qos_percentile,omitempty"`
	Parts         []livePart `json:"parts"`
}

type livePart struct {
	Part    int       `json:"part"`
	Sealed  int       `json:"sealed"`
	Windows []Summary `json:"windows"`
}

// liveTail bounds how many recent windows each part contributes to a
// live snapshot.
const liveTail = 32

// LiveSnapshot marshals the parts' recent sealed windows into an
// immutable JSON document for the introspection server. Safe to call
// concurrently with the collectors' owners (it only touches
// LiveSummaries). Returns a valid document for zero parts.
func LiveSnapshot(parts []*Collector) ([]byte, error) {
	doc := liveDoc{Schema: SchemaLive, Parts: []livePart{}}
	for i, c := range parts {
		if i == 0 {
			cfg := c.Config()
			doc.WidthSec = cfg.WidthSec
			doc.QoSLatencySec = cfg.QoSLatencySec
			doc.QoSPercentile = cfg.QoSPercentile
		}
		sums := c.LiveSummaries()
		sealed := len(sums)
		if sealed > liveTail {
			sums = sums[sealed-liveTail:]
		}
		if sums == nil {
			sums = []Summary{}
		}
		doc.Parts = append(doc.Parts, livePart{Part: i, Sealed: sealed, Windows: sums})
	}
	return json.Marshal(doc)
}
