package obs

// Merging support for the sharded kernel: each enclosure records into
// its own Sink (owned by the shard its entities live on, so recording
// stays single-threaded), and after the run the per-enclosure sinks
// are folded into one export sink. The fold is deterministic and
// partition-independent: parts are passed in enclosure order, which is
// fixed by the model, not by the partitioning — so the merged export
// is byte-identical at any shard count.

// Merge folds o's observations into h. Both histograms share the
// package-wide fixed bucket layout, so merging is exact.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	hasPos := h.count > h.underflow
	oPos := o.count > o.underflow
	if oPos {
		if !hasPos {
			h.min, h.max = o.min, o.max
		} else {
			if o.min < h.min {
				h.min = o.min
			}
			if o.max > h.max {
				h.max = o.max
			}
		}
	}
	h.count += o.count
	h.sum += o.sum
	h.underflow += o.underflow
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// MergeFrom folds parts into s, in argument order:
//
//   - counters add;
//   - histograms with the same name merge exactly;
//   - series points append in part order (partitioned models give each
//     part distinct series names, so this is a move, not an interleave);
//   - events k-way merge by time, ties broken by part order — each
//     part's events must be in nondecreasing time order (true for
//     anything recorded on a simulated clock);
//   - dropped-event counts add.
//
// The manifest is left untouched: the coordinator composes it.
//
// Merging a sink into itself panics: counters would double and the
// event merge would loop over a stream it is appending to.
func (s *Sink) MergeFrom(parts ...*Sink) {
	for _, p := range parts {
		if p == s {
			panic("obs: MergeFrom: sink passed as its own merge part")
		}
	}
	for _, p := range parts {
		for name, v := range p.counters {
			s.counters[name] += v
		}
		//whvet:allow maprange Hist.Merge is bucket-wise addition, so per-key merge order cannot reach the result; the local dst just caches the lazily created entry
		for name, h := range p.hists {
			dst := s.hists[name]
			if dst == nil {
				dst = &Hist{Name: name}
				s.hists[name] = dst
			}
			dst.Merge(h)
		}
		for _, name := range sortedKeys(p.series) {
			src := p.series[name]
			dst := s.series[name]
			if dst == nil {
				dst = &Series{Name: name}
				s.series[name] = dst
			}
			dst.Points = append(dst.Points, src.Points...)
		}
		s.dropped += p.dropped
	}
	// K-way time merge of event streams, stable on part order.
	evs := make([][]EventRecord, len(parts))
	total := 0
	for i, p := range parts {
		evs[i] = p.Events()
		total += len(evs[i])
	}
	idx := make([]int, len(parts))
	for n := 0; n < total; n++ {
		best := -1
		for i := range evs {
			if idx[i] >= len(evs[i]) {
				continue
			}
			if best < 0 || evs[i][idx[i]].T < evs[best][idx[best]].T {
				best = i
			}
		}
		e := evs[best][idx[best]]
		idx[best]++
		s.Event(e.Stream, e.T, e.Fields...)
	}
}
