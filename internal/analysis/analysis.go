// Package analysis is the repo's static-invariant framework: a small,
// stdlib-only core in the shape of golang.org/x/tools/go/analysis (the
// container image this repo builds in has no module proxy access, so
// the x/tools dependency is deliberately reimplemented rather than
// pinned), plus the loader and runner behind the cmd/whvet
// multichecker.
//
// The byte-diff CI gates (shard-diff, slo-diff, energy-diff) prove
// determinism for the handful of configurations they sample; the
// analyzers under internal/analysis/* prove, at the source level, that
// no call site can violate the invariants those gates check — see
// DESIGN.md §11 for the invariant catalogue.
//
// Legitimate exceptions are annotated in source with
//
//	//whvet:allow <check> <reason>
//
// on the flagged line, the line above it, or in the doc comment of the
// enclosing declaration (which allows the whole declaration). The
// reason is mandatory, and a directive naming an unknown check is
// itself a finding — a typoed suppression must never silently disable
// enforcement.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check: a name (the directive grammar's check
// identifier), a one-line contract, and the per-package Run function.
type Analyzer struct {
	// Name identifies the check in findings and in //whvet:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is the one-line invariant statement shown by whvet's usage.
	Doc string
	// Run inspects one package and reports diagnostics via the Pass.
	Run func(*Pass) error
}

// Pass carries everything an Analyzer may inspect about one package:
// the parsed files (with comments), the type-checked package and its
// types.Info, the transitive import set, and the full set of
// type-checked packages in the load (for cross-package type lookups
// like the obs.Recorder interface).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the package's import path (Pkg.Path(), repeated here
	// so scope decisions read without nil checks).
	PkgPath string
	// Deps holds the package's transitive import paths, standard
	// library included. It answers "does net/http link into this
	// package?" without any AST work.
	Deps map[string]bool
	// AllPkgs maps import path -> type-checked package for every
	// module package in the load (dependencies included), so analyzers
	// can resolve well-known types such as obs.Recorder.
	AllPkgs map[string]*types.Package
	// DepsOf returns the transitive import closure of any package in
	// the load (standard library included), or nil when the path is
	// unknown. It is the whole-graph complement to Deps.
	DepsOf func(importPath string) map[string]bool

	report func(Diagnostic)
}

// Diagnostic is one finding before directive suppression.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// NoAllow marks a diagnostic that //whvet:allow must not suppress:
	// the nohttp analyzer uses it for link-boundary violations outside
	// the sanctioned entry points, where an allowlist entry would be a
	// policy change, not an exception.
	NoAllow bool
}

// Report emits d against the pass's analyzer.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportNoAllow emits a formatted diagnostic that allow directives
// cannot suppress.
func (p *Pass) ReportNoAllow(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), NoAllow: true})
}

// SimScope reports whether pkgPath is one of the simulation/export
// packages whose behaviour feeds compared artifacts — the scope the
// determinism analyzers (nodeterm, maprange) enforce over. It covers
// every internal package and the experiments registry, minus the two
// deliberate exceptions:
//
//   - internal/obs/introspect serves live wall-clock HTTP and is, by
//     design, the one place the link boundary ends (see nohttp);
//   - internal/analysis itself (the checker is not a simulator).
//
// Fixture packages under a testdata/src/ tree are always in scope so
// the analysistest suites exercise the checks without configuration.
func SimScope(pkgPath string) bool {
	if strings.Contains(pkgPath, "/testdata/src/") {
		return true
	}
	switch {
	case strings.HasPrefix(pkgPath, "warehousesim/internal/obs/introspect"):
		return false
	case strings.HasPrefix(pkgPath, "warehousesim/internal/analysis"):
		return false
	case strings.HasPrefix(pkgPath, "warehousesim/internal/"):
		return true
	case pkgPath == "warehousesim/experiments":
		return true
	}
	return false
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}
