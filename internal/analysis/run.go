package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// Finding is one reportable violation after directive suppression, in
// the shape whvet prints and -json serializes.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Options configures one Run.
type Options struct {
	// Dir is the directory go list resolves patterns from (the module
	// root for whvet, a fixture root for analysistest).
	Dir string
	// Patterns are go package patterns; default ./...
	Patterns []string
	// Analyzers to run over every matched package.
	Analyzers []*Analyzer
	// KnownChecks names every check a directive may allow. It defaults
	// to the names of Analyzers, but the whvet CLI always passes the
	// full registry so running a subset of checks (-checks) does not
	// turn valid directives for the others into findings.
	KnownChecks []string
}

// Run loads the packages matched by opts, runs every analyzer over
// each of them, applies //whvet:allow suppression, and returns the
// surviving findings sorted by file, line, column, then check. File
// paths are relative to opts.Dir when possible.
func Run(opts Options) ([]Finding, error) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	known := make(map[string]bool)
	for _, name := range opts.KnownChecks {
		known[name] = true
	}
	if len(known) == 0 {
		for _, a := range opts.Analyzers {
			known[a.Name] = true
		}
	}

	fset, pkgs, depsOf, err := loadPackages(opts.Dir, opts.Patterns)
	if err != nil {
		return nil, err
	}
	allPkgs := make(map[string]*types.Package, len(pkgs))
	for _, p := range pkgs {
		allPkgs[p.path] = p.pkg
	}

	var findings []Finding
	relFile := func(pos token.Position) string {
		if opts.Dir != "" {
			if rel, err := filepath.Rel(opts.Dir, pos.Filename); err == nil && filepath.IsLocal(rel) {
				return rel
			}
		}
		return pos.Filename
	}

	for _, p := range pkgs {
		if !p.root {
			continue
		}
		// Directive index per file; malformed directives are findings
		// under the reserved check name "whvet" and are never
		// suppressible.
		directives := make(map[string]fileDirectives, len(p.files))
		for _, f := range p.files {
			fname := fset.Position(f.Pos()).Filename
			directives[fname] = parseDirectives(fset, f, known, func(pos token.Pos, msg string) {
				position := fset.Position(pos)
				findings = append(findings, Finding{
					File: relFile(position), Line: position.Line, Col: position.Column,
					Check: DirectiveCheck, Message: msg,
				})
			})
		}

		for _, a := range opts.Analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    p.files,
				Pkg:      p.pkg,
				Info:     p.info,
				PkgPath:  p.path,
				Deps:     p.deps,
				AllPkgs:  allPkgs,
				DepsOf:   depsOf,
			}
			pass.report = func(d Diagnostic) {
				position := fset.Position(d.Pos)
				if !d.NoAllow {
					if fd, ok := directives[position.Filename]; ok && fd.suppresses(a.Name, position.Line) {
						return
					}
				}
				findings = append(findings, Finding{
					File: relFile(position), Line: position.Line, Col: position.Column,
					Check: a.Name, Message: d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, p.path, err)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings, nil
}

// DirectiveCheck is the reserved check name malformed //whvet:
// directives are reported under.
const DirectiveCheck = "whvet"
