// Package analysistest runs whvet analyzers over fixture trees under
// internal/analysis/testdata/src and checks the produced findings
// against `// want <check>:"substring"` comments in the fixture
// sources — the same expectation style as golang.org/x/tools'
// analysistest, restated over this repo's stdlib-only framework.
//
// A want comment binds to the source line it sits on; a comment line
// that is nothing but a want binds to the line below it (needed when
// the flagged line is itself a //whvet: directive, whose trailing text
// would otherwise be parsed as the directive's reason). Multiple
// expectations may share one line:
//
//	for k := range m { // want maprange:"iteration order" maprange:"sort"
//
// The run fails when a finding has no matching want on its line, and
// when a want matched no finding. Directive errors surface under the
// check name "whvet" and are asserted the same way, which is how the
// unknown-check-directive-is-an-error contract is pinned.
//
// Fixtures live inside the module on purpose: `testdata` is invisible
// to ./... wildcards at the repo root, so the seeded violations never
// leak into builds, tests, or make lint, while go list still resolves
// and type-checks them when invoked from inside the fixture directory.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"warehousesim/internal/analysis"
)

// expectation is one parsed want: a check name and a message substring
// expected at file:line.
type expectation struct {
	file  string // fixture-relative, slash-separated
	line  int
	check string
	sub   string
}

var wantRE = regexp.MustCompile(`(\w+):"((?:[^"\\]|\\.)*)"`)

// Run executes the analyzers over the fixture tree rooted at
// testdata/src/<fixture> (relative to the caller's package directory)
// and matches findings against the tree's want comments. knownChecks
// seeds directive validation; pass the full registry the way cmd/whvet
// does.
func Run(t *testing.T, fixture string, analyzers []*analysis.Analyzer, knownChecks []string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("analysistest: resolving fixture dir: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("analysistest: fixture %s: %v", fixture, err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	findings, err := analysis.Run(analysis.Options{
		Dir:         dir,
		Analyzers:   analyzers,
		KnownChecks: knownChecks,
	})
	if err != nil {
		t.Fatalf("analysistest: running analyzers over %s: %v", fixture, err)
	}

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != f.File || w.line != f.Line || w.check != f.Check {
				continue
			}
			if strings.Contains(f.Message, w.sub) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding:\n  %s", fixture, f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: no %s finding matching %q at %s:%d", fixture, w.check, w.sub, w.file, w.line)
		}
	}
}

// collectWants parses every fixture .go file for want comments.
func collectWants(dir string) ([]expectation, error) {
	var wants []expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			bindLine := i + 1
			if strings.HasPrefix(strings.TrimSpace(line), "// want ") {
				bindLine = i + 2 // standalone want binds to the next line
			}
			spec := line[idx+len("// want "):]
			ms := wantRE.FindAllStringSubmatch(spec, -1)
			if len(ms) == 0 {
				return fmt.Errorf(`%s:%d: malformed want comment (need <check>:"substring")`, rel, i+1)
			}
			for _, m := range ms {
				wants = append(wants, expectation{file: rel, line: bindLine, check: m[1], sub: m[2]})
			}
		}
		return nil
	})
	return wants, err
}
