// Package maprange flags map iteration in functions that can reach an
// exporter or Recorder emission — the classic way Go's randomized map
// iteration order leaks into JSONL/CSV exports and breaks the
// byte-identical same-seed contract every CI diff gate depends on.
//
// A `for k := range m` is exempt when it is the first half of the
// sanctioned collect-and-sort idiom:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// i.e. the loop body only appends to slices (or only deletes from the
// ranged map), and at least one collected slice is later passed to a
// sort.* or slices.Sort* call in the same function.
//
// A second exemption covers keyed-write loops — bodies whose every
// write lands at dst[k] for the range key k (plus lazy map
// initialization), e.g.
//
//	for k, v := range src {
//		dst[k] += v
//	}
//
// Each key's write is independent of every other key's, so iteration
// order cannot reach the result regardless of what the function later
// emits. This is the shape of the obs merge/snapshot paths.
//
// "Can reach an emission" is computed over the package's static call
// graph: a function is emit-reaching when it (transitively, within the
// package) calls a method of a type implementing obs.Recorder, any
// function declared under internal/obs, or an encoding/json or
// encoding/csv encoder. Cross-package indirection (a helper in another
// package that emits) is out of reach of a per-package analysis; the
// byte-diff gates remain the backstop for that residue (DESIGN.md §11).
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"warehousesim/internal/analysis"
)

// Analyzer is the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "map iteration in emit-reaching functions must collect and sort keys first",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.SimScope(pass.PkgPath) {
		return nil
	}

	recorder := recorderInterface(pass)

	// Pass 1: per-function emit seeds and the intra-package call graph.
	type funcNode struct {
		decl     *ast.FuncDecl
		emits    bool
		callees  map[*types.Func]bool
		reaching bool
	}
	nodes := make(map[*types.Func]*funcNode)
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			node := &funcNode{decl: fd, callees: make(map[*types.Func]bool)}
			nodes[obj] = node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isEmitCall(pass, call, recorder) {
					node.emits = true
				}
				if callee := calleeOf(pass, call); callee != nil {
					node.callees[callee] = true
				}
				return true
			})
		}
	}

	// Fixed point: propagate emit-reachability backwards over the
	// intra-package graph (callees in other packages count only when
	// they are emit calls, handled by isEmitCall above).
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if n.reaching {
				continue
			}
			if n.emits {
				n.reaching = true
				changed = true
				continue
			}
			for callee := range n.callees {
				if cn, ok := nodes[callee]; ok && cn.reaching {
					n.reaching = true
					changed = true
					break
				}
			}
		}
	}

	// Pass 2: map ranges inside emit-reaching functions.
	for _, fd := range decls {
		obj := pass.Info.Defs[fd.Name].(*types.Func)
		if !nodes[obj].reaching {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if collectAndSort(pass, fd.Body, rng) || deleteOnly(pass, rng) || keyedWritesOnly(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration order reaches a Recorder/exporter emission from %s; collect the keys into a slice and sort before iterating (keyed writes dst[k]=… and delete-only loops are fine)",
				fd.Name.Name)
			return true
		})
	}
	return nil
}

// recorderInterface resolves obs.Recorder from the loaded package set;
// nil when the obs package is not in the load (pure fixture trees).
func recorderInterface(pass *analysis.Pass) *types.Interface {
	obsPkg, ok := pass.AllPkgs["warehousesim/internal/obs"]
	if !ok {
		return nil
	}
	obj := obsPkg.Scope().Lookup("Recorder")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// isEmitCall reports whether call is an emission seed: a method on an
// obs.Recorder implementation, a call into internal/obs, or a
// json/csv encode.
func isEmitCall(pass *analysis.Pass, call *ast.CallExpr, recorder *types.Interface) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Method call on a Recorder implementation?
	if s, ok := pass.Info.Selections[sel]; ok && recorder != nil {
		recv := s.Recv()
		if types.Implements(recv, recorder) || types.Implements(types.NewPointer(recv), recorder) {
			return true
		}
	}
	// Call resolving into internal/obs or an encoder package?
	if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
		path := obj.Pkg().Path()
		if strings.HasPrefix(path, "warehousesim/internal/obs") && path != pass.PkgPath {
			return true
		}
		if path == "encoding/json" || path == "encoding/csv" {
			return true
		}
		// Hand-rolled exporters (internal/obs writes its JSONL rows
		// itself) surface as buffered/formatted writes.
		if path == "bufio" {
			return true
		}
		if path == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") {
			return true
		}
	}
	return false
}

// calleeOf resolves a call to its static *types.Func target (package
// function or method), or nil for indirect calls.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// collectAndSort reports whether rng's body only appends to slices and
// one of those slices later flows into a sort call in the enclosing
// function body.
func collectAndSort(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	collected := make(map[types.Object]bool)
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		callRhs, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := callRhs.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if obj := pass.Info.ObjectOf(lhs); obj != nil {
			collected[obj] = true
		}
	}
	if len(collected) == 0 {
		return false
	}
	// Look for sort.X(collected) / slices.SortX(collected) anywhere
	// after the range statement.
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if collected[pass.Info.ObjectOf(arg)] {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// deleteOnly reports whether rng's body consists solely of delete
// calls on the ranged map — order-independent, so safe.
func deleteOnly(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	rngObj := rangedObject(pass, rng.X)
	if len(rng.Body.List) == 0 {
		return false
	}
	for _, stmt := range rng.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" || len(call.Args) != 2 {
			return false
		}
		if rngObj != nil {
			if arg, ok := call.Args[0].(*ast.Ident); !ok || pass.Info.ObjectOf(arg) != rngObj {
				return false
			}
		}
	}
	return true
}

// keyedWritesOnly reports whether rng's body writes only to map
// entries indexed by the range key (dst[k] = …, dst[k] += …) or
// lazily initializes map-typed destinations. Such a loop is pointwise:
// each key's effect is independent of every other key's, so iteration
// order cannot reach any later emission. If-statements are allowed
// when both branches are themselves keyed-write-only (the init stmt
// and condition only read).
func keyedWritesOnly(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := pass.Info.ObjectOf(key)
	if keyObj == nil || len(rng.Body.List) == 0 {
		return false
	}
	return keyedStmts(pass, rng.Body.List, keyObj)
}

func keyedStmts(pass *analysis.Pass, stmts []ast.Stmt, key types.Object) bool {
	for _, stmt := range stmts {
		if !keyedStmt(pass, stmt, key) {
			return false
		}
	}
	return true
}

func keyedStmt(pass *analysis.Pass, stmt ast.Stmt, key types.Object) bool {
	switch stmt := stmt.(type) {
	case *ast.AssignStmt:
		if stmt.Tok == token.DEFINE {
			return false // locals escape the pointwise shape
		}
		for _, lhs := range stmt.Lhs {
			if !keyedLHS(pass, lhs, key) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return keyedLHS(pass, stmt.X, key)
	case *ast.IfStmt:
		if !keyedStmts(pass, stmt.Body.List, key) {
			return false
		}
		if stmt.Else != nil {
			eb, ok := stmt.Else.(*ast.BlockStmt)
			if !ok || !keyedStmts(pass, eb.List, key) {
				return false
			}
		}
		return true
	}
	return false
}

// keyedLHS accepts dst[k] for the range key k, and bare map-typed
// lvalues (lazy initialization of the destination map).
func keyedLHS(pass *analysis.Pass, lhs ast.Expr, key types.Object) bool {
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		id, ok := ix.Index.(*ast.Ident)
		return ok && pass.Info.ObjectOf(id) == key
	}
	if t := pass.TypeOf(lhs); t != nil {
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}
	return false
}

func rangedObject(pass *analysis.Pass, x ast.Expr) types.Object {
	if id, ok := x.(*ast.Ident); ok {
		return pass.Info.ObjectOf(id)
	}
	return nil
}
