package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader resolves packages with `go list -export -deps -json` and
// type-checks the module's packages from source. Standard-library
// dependencies are imported from the compiler's export data (the
// Export field go list reports), so loading needs no module proxy, no
// GOPATH layout, and no re-type-check of the standard library — the
// same offline posture as the rest of the repo.

// loadedPackage is one type-checked module package plus the metadata
// the runner and analyzers need.
type loadedPackage struct {
	path  string
	dir   string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	deps  map[string]bool // transitive import paths
	// root marks packages matched by the requested patterns (as
	// opposed to dependencies pulled in by -deps); only roots are
	// analyzed.
	root bool
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// loadPackages lists patterns relative to dir, parses and type-checks
// every non-standard package, and returns the shared FileSet, the
// packages in dependency order, and a whole-graph transitive-closure
// lookup (standard library included).
func loadPackages(dir string, patterns []string) (*token.FileSet, []*loadedPackage, func(string) map[string]bool, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Imports,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPackage
	byPath := make(map[string]*listPackage)
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, p)
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Transitive import closure per package, memoized over the listing
	// (which contains the full dependency graph thanks to -deps).
	closure := make(map[string]map[string]bool)
	var depsOf func(path string) map[string]bool
	depsOf = func(path string) map[string]bool {
		if d, ok := closure[path]; ok {
			return d
		}
		d := make(map[string]bool)
		closure[path] = d // set before recursing; import graphs are acyclic
		if p := byPath[path]; p != nil {
			for _, imp := range p.Imports {
				if imp == "C" {
					continue
				}
				d[imp] = true
				for sub := range depsOf(imp) {
					d[sub] = true
				}
			}
		}
		return d
	}

	fset := token.NewFileSet()
	typed := make(map[string]*types.Package)
	gcImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*loadedPackage
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if tp, ok := typed[path]; ok {
					return tp, nil
				}
				if path == "unsafe" {
					return types.Unsafe, nil
				}
				return gcImp.Import(path)
			}),
		}
		tp, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		typed[lp.ImportPath] = tp
		pkgs = append(pkgs, &loadedPackage{
			path:  lp.ImportPath,
			dir:   lp.Dir,
			files: files,
			pkg:   tp,
			info:  info,
			deps:  depsOf(lp.ImportPath),
			root:  !lp.DepOnly,
		})
	}
	return fset, pkgs, func(path string) map[string]bool {
		if _, ok := byPath[path]; !ok {
			return nil
		}
		return depsOf(path)
	}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
