// Package nohttp enforces the net/http link boundary established in
// PR 2: linking net/http into a simulation binary shifted
// BenchmarkDESTrial's B/op by ~20 (init-time allocation noise in the
// shared runtime), so the HTTP server lives in the one leaf package
// internal/obs/introspect, and only cmd/* entry points that opt in —
// with an explicit //whvet:allow nohttp directive on the import — may
// link it from there.
//
// The check is transitive: a package is flagged when net/http appears
// anywhere in its import closure, and the diagnostic lands on the
// direct import that pulls it in, so the leak's entry edge is the
// thing that gets reviewed. Outside cmd/* the diagnostic cannot be
// suppressed at all — an allowlist entry in a library package would be
// a boundary change, which belongs in this analyzer, not in a
// directive.
package nohttp

import (
	"strconv"
	"strings"

	"warehousesim/internal/analysis"
)

// Analyzer is the nohttp check.
var Analyzer = &analysis.Analyzer{
	Name: "nohttp",
	Doc:  "net/http may link only into internal/obs/introspect and cmd/* entry points that opt in",
	Run:  run,
}

// Sanctioned is the one package allowed to import net/http without a
// directive: the introspection server that exists precisely to keep
// the HTTP dependency out of everything else.
const Sanctioned = "warehousesim/internal/obs/introspect"

// EntryPrefixes lists the import-path prefixes treated as opt-in
// entry points: within them a //whvet:allow nohttp directive on the
// offending import is honored. It is a variable so the analysistest
// fixtures can stand in their own tree.
var EntryPrefixes = []string{"warehousesim/cmd/"}

func run(pass *analysis.Pass) error {
	if pass.PkgPath == Sanctioned || strings.HasPrefix(pass.PkgPath, Sanctioned+"/") {
		return nil
	}
	if !pass.Deps["net/http"] {
		return nil
	}
	entry := isEntry(pass.PkgPath)
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != "net/http" && !pass.DepsOf(path)["net/http"] {
				continue
			}
			msg := "net/http links in through import " + strconv.Quote(path) +
				"; the link boundary allows it only in " + Sanctioned + " and opted-in cmd/* entry points (PR 2: linking net/http shifted BenchmarkDESTrial B/op)"
			if entry {
				pass.Reportf(imp.Pos(), "%s", msg)
			} else {
				pass.ReportNoAllow(imp.Pos(), "%s", msg)
			}
		}
	}
	return nil
}

func isEntry(pkgPath string) bool {
	for _, p := range EntryPrefixes {
		if strings.HasPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}
