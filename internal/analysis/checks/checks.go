// Package checks is the whvet analyzer registry: the five invariant
// checks, in the order they report.
package checks

import (
	"strings"

	"warehousesim/internal/analysis"
	"warehousesim/internal/analysis/hotpath"
	"warehousesim/internal/analysis/maprange"
	"warehousesim/internal/analysis/nodeterm"
	"warehousesim/internal/analysis/nohttp"
	"warehousesim/internal/analysis/obsname"
)

// All returns the full analyzer suite in registration order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterm.Analyzer,
		maprange.Analyzer,
		nohttp.Analyzer,
		hotpath.Analyzer,
		obsname.Analyzer,
	}
}

// Names returns the registered check names, in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// ByName returns the analyzers selected by the comma-separated list
// (empty selects all), or an error naming the unknown check.
func ByName(list string) ([]*analysis.Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, &UnknownCheckError{Name: name}
		}
		out = append(out, a)
	}
	return out, nil
}

// UnknownCheckError names a -checks entry that is not registered.
type UnknownCheckError struct{ Name string }

func (e *UnknownCheckError) Error() string {
	return "unknown check " + e.Name + " (registered: " + strings.Join(Names(), ", ") + ")"
}
