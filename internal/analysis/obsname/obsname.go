// Package obsname validates every string-literal metric and stream
// name passed to an obs.Recorder method (Count, Gauge, Observe,
// Event) against the repo's registered naming scheme, so a typoed
// name — "membalde.hit_rate" — fails the build instead of silently
// creating a parallel, never-compared series in the exports.
//
// The scheme (see registry.go for the registered sets):
//
//   - names are dot-separated lowercase [a-z0-9_] components, the
//     first of which is a registered domain: "memblade.hit_rate",
//     "slo.windows_violating";
//   - dynamic suffixes are built by concatenating a registered prefix
//     literal ending in "." (e.g. "util." + resourceName); the prefix
//     is validated, the runtime remainder is the caller's contract;
//   - a handful of bare legacy names ("request", "latency_sec", ...)
//     predate the scheme and are frozen in exported artifacts and
//     golden files, so they are registered verbatim; new bare names
//     are rejected.
package obsname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"warehousesim/internal/analysis"
)

// Analyzer is the obsname check.
var Analyzer = &analysis.Analyzer{
	Name: "obsname",
	Doc:  "Recorder metric/stream names must follow the registered domain.metric scheme",
	Run:  run,
}

// nameTakingMethods maps Recorder method names to the index of their
// name argument.
var nameTakingMethods = map[string]int{
	"Count": 0, "Gauge": 0, "Observe": 0, "Event": 0,
}

func run(pass *analysis.Pass) error {
	recorder := recorderInterface(pass)
	if recorder == nil {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := nameTakingMethods[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok {
				return true
			}
			recv := s.Recv()
			if !types.Implements(recv, recorder) && !types.Implements(types.NewPointer(recv), recorder) {
				return true
			}
			checkName(pass, call.Args[argIdx])
			return true
		})
	}
	return nil
}

// recorderInterface resolves obs.Recorder from the loaded package set.
func recorderInterface(pass *analysis.Pass) *types.Interface {
	obsPkg, ok := pass.AllPkgs["warehousesim/internal/obs"]
	if !ok {
		return nil
	}
	obj := obsPkg.Scope().Lookup("Recorder")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// checkName validates the name argument when it is statically known:
// a constant string (literal or named constant), or a concatenation
// whose leftmost operand is a registered "domain.…" prefix literal.
func checkName(pass *analysis.Pass, arg ast.Expr) {
	// Constant (covers literals and named constants like span.Stream).
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
		name := constant.StringVal(tv.Value)
		if msg := validateFull(name); msg != "" {
			pass.Reportf(arg.Pos(), "metric name %q: %s", name, msg)
		}
		return
	}
	// Concatenation with a literal prefix: "util." + r.Name().
	if b, ok := arg.(*ast.BinaryExpr); ok {
		left := leftmost(b)
		if lit, ok := left.(*ast.BasicLit); ok {
			prefix, err := strconv.Unquote(lit.Value)
			if err != nil {
				return
			}
			if msg := validatePrefix(prefix); msg != "" {
				pass.Reportf(lit.Pos(), "metric name prefix %q: %s", prefix, msg)
			}
			return
		}
	}
	// Fully dynamic names can't be checked statically; the exporters'
	// sorted-key output keeps them deterministic, and the registry
	// covers the literal sites, which is where typos happen.
}

func leftmost(e ast.Expr) ast.Expr {
	for {
		b, ok := e.(*ast.BinaryExpr)
		if !ok {
			return e
		}
		e = b.X
	}
}

// validateFull returns a diagnostic message for a complete name, or
// "" when the name conforms.
func validateFull(name string) string {
	parts := strings.Split(name, ".")
	for _, p := range parts {
		if !componentOK(p) {
			return "components must be lowercase [a-z0-9_] starting with a letter"
		}
	}
	if len(parts) == 1 {
		if legacyBare[name] {
			return ""
		}
		return "bare names are closed to new entries; use domain.metric (registered domains: " + domainList() + ")"
	}
	if !domains[parts[0]] {
		return "unregistered domain " + strconv.Quote(parts[0]) + " (registered: " + domainList() + "); add it to internal/analysis/obsname/registry.go if it is intentional"
	}
	return ""
}

// validatePrefix returns a diagnostic for a concatenation prefix
// (which must end in "." and name a registered domain), or "".
func validatePrefix(prefix string) string {
	if !strings.HasSuffix(prefix, ".") {
		return "concatenated names must build from a registered \"domain.\" literal prefix so the domain is statically known"
	}
	trimmed := strings.TrimSuffix(prefix, ".")
	parts := strings.Split(trimmed, ".")
	for _, p := range parts {
		if !componentOK(p) {
			return "components must be lowercase [a-z0-9_] starting with a letter"
		}
	}
	if !domains[parts[0]] {
		return "unregistered domain " + strconv.Quote(parts[0]) + " (registered: " + domainList() + ")"
	}
	return ""
}

func componentOK(s string) bool {
	if s == "" {
		return false
	}
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}
