package obsname

import (
	"sort"
	"strings"
)

// The metric-name registry. Adding a domain here is a reviewed act:
// it is the list a reader greps to learn what telemetry exists, and it
// is what stands between a typo and a silently forked metric.

// domains registers the first component of every dotted metric/stream
// name.
var domains = map[string]bool{
	"cluster":     true, // rack/driver-level counters
	"demand":      true, // workload demand sampling (internal/workload)
	"des":         true, // kernel counters (des.events, des.heap_depth)
	"energy":      true, // energy telemetry plane (internal/obs/energy)
	"experiment":  true, // per-experiment event stream
	"experiments": true, // experiments registry counters
	"flashcache":  true, // flash-cache simulator
	"fleet":       true, // fleet hybrid summary streams (internal/cluster/fleet.go)
	"memblade":    true, // memory-blade simulator
	"qlen":        true, // per-resource queue-length series (dynamic suffix)
	"shard":       true, // shard-kernel ShardDiag telemetry
	"slo":         true, // windowed SLO plane (internal/obs/window)
	"trial":       true, // per-trial counters
	"util":        true, // per-resource utilization series (dynamic suffix)
}

// legacyBare registers the pre-scheme single-component names. They are
// baked into exported artifacts, golden files, and the introspection
// endpoints, so renaming them would invalidate every committed
// baseline; the set is frozen — new names must be domain.metric.
var legacyBare = map[string]bool{
	"request":        true, // per-request event stream (cluster driver + rack)
	"requests":       true, // completed-request counter
	"latency_sec":    true, // request-latency histogram
	"qos_violations": true, // QoS-violation counter
	"span":           true, // causal span event stream (internal/obs/span)
	"slo_episode":    true, // QoS episode begin/end events (internal/obs/window)
	"energy_total":   true, // run-total energy event (internal/obs/energy)
	"experiment":     true, // per-experiment progress events
	"probe":          true, // kernel timeline probe stream (internal/des)
}

func domainList() string {
	names := make([]string, 0, len(domains))
	for d := range domains {
		names = append(names, d)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
