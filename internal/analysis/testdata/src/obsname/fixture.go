// Package fixture exercises the metric-name scheme against a local
// obs.Recorder implementation (obsname resolves the interface from the
// real internal/obs package, so implementing it here is the same as
// implementing it in a model package).
package fixture

import "warehousesim/internal/obs"

type rec struct{}

func (rec) Enabled() bool                                       { return true }
func (rec) Count(name string, delta int64)                      {}
func (rec) Gauge(name string, t, v float64)                     {}
func (rec) Observe(name string, v float64)                      {}
func (rec) Event(stream string, t float64, fields ...obs.Field) {}

const stream = "span"

func emit(r rec, resource string, t float64) {
	r.Count("trial.completed", 1)
	r.Count("membalde.hits", 1)   // want obsname:"unregistered domain"
	r.Count("fresh_bare", 1)      // want obsname:"bare names are closed"
	r.Count("Trial.Completed", 1) // want obsname:"lowercase"
	r.Observe("latency_sec", t)
	r.Gauge("util."+resource, t, 1)
	r.Gauge("wattage."+resource, t, 1) // want obsname:"unregistered domain"
	r.Gauge("util"+resource, t, 1)     // want obsname:"literal prefix"
	r.Event(stream, t)
	r.Event("request", t)
}

// notARecorder has the method names but not the interface: its calls
// are out of scope.
type notARecorder struct{}

func (notARecorder) Count(name string, delta int64) {}

func other(n notARecorder) {
	n.Count("Whatever.Goes", 1)
}
