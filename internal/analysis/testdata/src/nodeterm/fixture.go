// Package fixture seeds one violation of each nodeterm rule.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want nodeterm:"wall clock: time.Now"
	return time.Since(start) // want nodeterm:"wall clock: time.Since"
}

func globalRand() int {
	return rand.Intn(10) // want nodeterm:"math/rand: rand.Intn"
}

func ambientEnv() string {
	return os.Getenv("SEED") // want nodeterm:"environment: os.Getenv"
}

func handRolledMix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15           // want nodeterm:"raw seed mixing"
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9 // want nodeterm:"raw seed mixing"
	return z
}
