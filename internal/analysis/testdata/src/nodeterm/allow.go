package fixture

import "time"

// allowedDecl shows decl-scoped suppression: a directive in the doc
// comment covers the whole declaration.
//
//whvet:allow nodeterm fixture: wall clock feeds telemetry only, nothing compared
func allowedDecl() (time.Time, time.Time) {
	a := time.Now()
	b := time.Now()
	return a, b
}

func allowedSameLine() time.Time {
	return time.Now() //whvet:allow nodeterm fixture: same-line suppression
}

func allowedLineAbove() time.Time {
	//whvet:allow nodeterm fixture: line-above suppression
	return time.Now()
}

func notCovered() time.Time {
	//whvet:allow nodeterm fixture: a directive only reaches its own line and the next
	x := 0
	_ = x
	return time.Now() // want nodeterm:"wall clock: time.Now"
}
