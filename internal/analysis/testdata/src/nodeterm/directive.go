package fixture

// Malformed directives are findings under the reserved check name
// "whvet" — a typoed suppression must fail loudly, not become a no-op.

//whvet:deny nodeterm suppression is opt-in only // want whvet:"unknown whvet directive"

//whvet:allow nosuchcheck reasons do not save unknown checks // want whvet:"allows unknown check"

// want whvet:"missing its reason"
//whvet:allow nodeterm

// want whvet:"needs a check name"
//whvet:allow
