// Package fixture seeds maprange violations and each sanctioned idiom.
package fixture

import (
	"encoding/json"
	"sort"
)

// export reaches an emission (json.Marshal), so its map iterations
// must be order-independent or sorted.
func export(m map[string]int) ([]byte, error) {
	total := 0
	for k, v := range m { // want maprange:"iteration order"
		total += len(k) + v
	}
	return json.Marshal(total)
}

// collectAndSort is the sanctioned sort idiom: collect keys, sort,
// iterate the slice.
func collectAndSort(m map[string]int) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return json.Marshal(out)
}

// keyedWrites is pointwise: every write lands at dst[k] for the range
// key, so iteration order cannot reach the marshaled result.
func keyedWrites(dst, src map[string]int) ([]byte, error) {
	for k, v := range src {
		dst[k] += v
	}
	return json.Marshal(len(dst))
}

// lazyKeyedWrites adds the lazy-initialization shape the obs merge
// paths use.
func lazyKeyedWrites(dst map[string]int, src map[string]int) ([]byte, error) {
	for k, v := range src {
		if dst == nil {
			dst = map[string]int{}
		}
		dst[k] = v
	}
	return json.Marshal(len(dst))
}

// deleteOnly loops are order-independent by construction.
func deleteOnly(m map[string]int) ([]byte, error) {
	for k := range m {
		delete(m, k)
	}
	return json.Marshal(len(m))
}

// pure never reaches an emission, so its iteration order is its own
// business.
func pure(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// indirect reaches the emission through an intra-package call, which
// the reachability pass must see.
func indirect(m map[string]int) {
	for k, v := range m { // want maprange:"iteration order"
		sink(k, v)
	}
}

func sink(k string, v int) {
	b, _ := json.Marshal(v)
	_ = append(b, k...)
}

// allowed shows directive suppression with a recorded justification.
func allowed(m map[string]int) ([]byte, error) {
	first := 0
	//whvet:allow maprange fixture: the loop result is a commutative reduction
	for _, v := range m {
		first += v
	}
	return json.Marshal(first)
}
