// Package uses links net/http transitively through lib; the boundary
// tracks the whole dependency closure, not just direct imports.
package uses

import "warehousesim/internal/analysis/testdata/src/nohttp/lib" // want nohttp:"links in through import"

// Method exists so the import is used.
func Method() string { return lib.Probe() }
