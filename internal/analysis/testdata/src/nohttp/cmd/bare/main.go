// Command bare links net/http without opting in; entry points are
// flagged too, they are just allowed to carry a directive.
package main

import "net/http" // want nohttp:"links in through import"

func main() { _ = http.MethodGet }
