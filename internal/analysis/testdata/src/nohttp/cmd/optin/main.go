// Command optin is an entry point that opts into the HTTP stack with
// a reasoned directive, the sanctioned way to serve live endpoints.
package main

import (
	//whvet:allow nohttp fixture: this binary serves a live endpoint and accepts the link cost
	"net/http"
)

func main() { _ = http.MethodGet }
