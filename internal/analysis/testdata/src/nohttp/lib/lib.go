// Package lib imports net/http outside the sanctioned introspect
// package and outside any entry point: the finding is unsuppressible,
// so the allow directive below must not silence it.
package lib

import (
	//whvet:allow nohttp fixture: directives must not work outside entry points
	"net/http" // want nohttp:"links in through import"
)

// Probe exists so the import is used.
func Probe() string { return http.MethodGet }
