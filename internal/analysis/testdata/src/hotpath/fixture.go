// Package fixture seeds each hotpath regression class inside a marked
// function, plus the shapes the check must leave alone.
package fixture

import "fmt"

type buffer struct{ vals []int }

func box(v interface{}) { _ = v }

// hot carries the marker, so every regression class inside it is a
// finding.
//
//perf:hotpath
func hot(b *buffer, xs []int, name string) string {
	cont := func() {} // want hotpath:"closure in hot path"
	cont()
	s := fmt.Sprintf("n=%d", len(xs)) // want hotpath:"fmt.Sprintf in hot path"
	label := name + s                 // want hotpath:"string concatenation"
	var grown []int
	for _, x := range xs {
		grown = append(grown, x) // want hotpath:"append growth"
	}
	b.vals = grown
	box(len(xs)) // want hotpath:"interface boxing"
	box(b)       // pointer-shaped: fits the interface word, no allocation
	box(nil)
	return label
}

// cold has the same body but no marker: unmarked functions are out of
// scope by design (the check is opt-in).
func cold(xs []int, name string) string {
	s := fmt.Sprintf("n=%d", len(xs))
	var grown []int
	for _, x := range xs {
		grown = append(grown, x)
	}
	_ = grown
	return name + s
}

// preallocated shows the sanctioned append shape: capacity up front.
//
//perf:hotpath
func preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// guarded shows the sanctioned cold-panic exception: the format call
// sits on a never-taken guard path and carries a reasoned directive.
//
//perf:hotpath
func guarded(x int) int {
	if x < 0 {
		//whvet:allow hotpath fixture: cold panic path, the guard never fires in a correct run
		panic(fmt.Sprintf("negative %d", x))
	}
	return x * 2
}

// constant folding is exempt: "a" + "b" costs nothing at run time.
//
//perf:hotpath
func folded() string {
	const prefix = "trial"
	return prefix + ".completed"
}
