package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// The //whvet:allow directive grammar.
//
//	//whvet:allow <check> <reason>
//
// A directive suppresses diagnostics of the named check on its own
// line, on the line directly below it, or — when it appears in the doc
// comment of a declaration — anywhere inside that declaration. The
// reason is part of the grammar, not a convention: a directive without
// one is a finding, as is a directive naming a check whvet does not
// know, so suppressions can neither rot silently nor typo themselves
// into no-ops.

const directivePrefix = "//whvet:"

// allowDirective is one parsed //whvet:allow comment.
type allowDirective struct {
	check  string
	reason string
	// line is the line the comment sits on; it suppresses diagnostics
	// on line and line+1.
	line int
	// declStart/declEnd, when non-zero, extend suppression to the
	// whole enclosing declaration (doc-comment placement).
	declStart, declEnd int
}

// fileDirectives is the directive index of one file.
type fileDirectives struct {
	allows []allowDirective
}

// parseDirectives scans every comment of f for //whvet: directives.
// Malformed directives are reported through report (as check "whvet")
// and excluded from the index.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool, report func(pos token.Pos, msg string)) fileDirectives {
	// Doc-comment directives get declaration extent; index decl ranges
	// by comment group first.
	type span struct{ start, end int }
	declOf := make(map[*ast.CommentGroup]span)
	for _, d := range f.Decls {
		var doc *ast.CommentGroup
		switch d := d.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc != nil {
			declOf[doc] = span{fset.Position(d.Pos()).Line, fset.Position(d.End()).Line}
		}
	}

	var fd fileDirectives
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := text[len(directivePrefix):]
			verb, args, _ := strings.Cut(rest, " ")
			if verb != "allow" {
				report(c.Pos(), "unknown whvet directive //whvet:"+verb+" (only //whvet:allow <check> <reason> is defined)")
				continue
			}
			check, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
			reason = strings.TrimSpace(reason)
			if check == "" {
				report(c.Pos(), "malformed directive: //whvet:allow needs a check name and a reason")
				continue
			}
			if !known[check] {
				report(c.Pos(), "directive allows unknown check "+strconv.Quote(check)+" (known: "+strings.Join(sortedNames(known), ", ")+")")
				continue
			}
			if reason == "" {
				report(c.Pos(), "directive //whvet:allow "+check+" is missing its reason")
				continue
			}
			d := allowDirective{check: check, reason: reason, line: fset.Position(c.Pos()).Line}
			if sp, ok := declOf[cg]; ok {
				d.declStart, d.declEnd = sp.start, sp.end
			}
			fd.allows = append(fd.allows, d)
		}
	}
	return fd
}

// suppresses reports whether the index contains an allow for check
// covering line.
func (fd fileDirectives) suppresses(check string, line int) bool {
	for _, a := range fd.allows {
		if a.check != check {
			continue
		}
		if line == a.line || line == a.line+1 {
			return true
		}
		if a.declStart != 0 && line >= a.declStart && line <= a.declEnd {
			return true
		}
	}
	return false
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
