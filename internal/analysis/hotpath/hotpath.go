// Package hotpath guards the allocation discipline PR 3 and PR 8 paid
// for: functions annotated with a `//perf:hotpath` doc-comment line
// (the DES event loop, the shard exchange/merge path, the pooled trial
// path) are checked for the four regressions that silently reintroduce
// per-event allocation:
//
//   - closures: a func literal allocates its captured environment;
//     the pooled engines bind continuations once at setup instead.
//   - formatting: fmt.Sprintf/Sprint/Errorf and runtime string
//     concatenation allocate on every call. (Concatenation folded at
//     compile time — "a"+"b" — is exempt.) Panic messages on
//     never-taken guard paths are the classic legitimate exception;
//     annotate those lines with //whvet:allow hotpath <reason>.
//   - interface boxing: converting a non-pointer-shaped value (struct,
//     string, int, slice) to an interface heap-allocates the value.
//     Pointer-shaped conversions (pointers, channels, maps, funcs) are
//     free and stay unflagged.
//   - append growth: append in a loop onto a slice that was declared
//     in the same function without a capacity (var s []T, s := []T{},
//     make([]T, n)) reallocates O(log n) times; preallocate with
//     make(cap) or reuse a scratch buffer. Slices whose backing comes
//     from elsewhere (fields, parameters) are assumed pooled.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"warehousesim/internal/analysis"
)

// Analyzer is the hotpath check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//perf:hotpath functions must not close over state, format, box into interfaces, or grow slices",
	Run:  run,
}

// Marker is the doc-comment line that opts a function into the check.
const Marker = "//perf:hotpath"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path %s: a func literal allocates its environment per call; bind the continuation once at setup (see internal/cluster/trial.go)", name)
			return false // the literal's body is not the hot path's
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		case *ast.BinaryExpr:
			checkConcat(pass, name, n)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				if t := pass.TypeOf(n.Lhs[0]); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates per call", name)
				}
			}
		}
		return true
	})
	checkAppendGrowth(pass, fd)
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	name := fd.Name.Name
	// Formatting calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (formatting state and boxed arguments) per call", obj.Name(), name)
			return
		}
	}
	// Interface boxing at the call boundary.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, arg, pt) {
			pass.Reportf(arg.Pos(), "interface boxing in hot path %s: %s argument converts to %s and heap-allocates per call", name, typeLabel(pass, arg), pt)
		}
	}
}

func checkConcat(pass *analysis.Pass, name string, b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := pass.Info.Types[b]
	if !ok || tv.Type == nil || !isString(tv.Type) {
		return
	}
	if tv.Value != nil {
		return // folded at compile time
	}
	pass.Reportf(b.Pos(), "string concatenation in hot path %s allocates per call; hoist or preformat it", name)
}

// checkAppendGrowth flags append-in-loop onto locally declared,
// capacity-less slices.
func checkAppendGrowth(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect locals declared without capacity.
	noCap := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				if declaredWithoutCap(n.Rhs[i]) {
					noCap[obj] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					if obj := pass.Info.ObjectOf(id); obj != nil && isSlice(obj.Type()) {
						noCap[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(noCap) == 0 {
		return
	}
	// Flag appends to those locals inside loops.
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m != n {
					inLoop(m.Body, depth+1)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					inLoop(m.Body, depth+1)
					return false
				}
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				fn, ok := m.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" || len(m.Args) == 0 {
					return true
				}
				if id, ok := m.Args[0].(*ast.Ident); ok && noCap[pass.Info.ObjectOf(id)] {
					pass.Reportf(m.Pos(), "append growth in hot path %s: %s was declared without capacity, so looped appends reallocate; preallocate with make(len=0, cap=n) or reuse a scratch slice", fd.Name.Name, id.Name)
				}
			}
			return true
		})
	}
	inLoop(fd.Body, 0)
}

// declaredWithoutCap reports whether rhs creates a slice with no
// useful capacity: nil-ish literals, empty composite literals, or
// 2-argument make.
func declaredWithoutCap(rhs ast.Expr) bool {
	switch rhs := rhs.(type) {
	case *ast.CompositeLit:
		return len(rhs.Elts) == 0
	case *ast.CallExpr:
		if fn, ok := rhs.Fun.(*ast.Ident); ok && fn.Name == "make" {
			return len(rhs.Args) < 3
		}
	case *ast.Ident:
		return rhs.Name == "nil"
	}
	return false
}

func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// boxes reports whether passing arg to a parameter of type pt converts
// a non-pointer-shaped concrete value into an interface.
func boxes(pass *analysis.Pass, arg ast.Expr, pt types.Type) bool {
	if _, ok := pt.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || tv.Value != nil {
		// Constants (nil included) either don't allocate or are
		// interned; the per-call cost the check hunts is boxing of
		// runtime values.
		return false
	}
	at := tv.Type
	if _, ok := at.Underlying().(*types.Interface); ok {
		return false // interface-to-interface, no new allocation
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the interface word
	}
	if at == types.Typ[types.UnsafePointer] {
		return false
	}
	return true
}

func typeLabel(pass *analysis.Pass, e ast.Expr) string {
	if t := pass.TypeOf(e); t != nil {
		return t.String()
	}
	return "value"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
