// Package nodeterm forbids nondeterminism sources in the simulation
// and export packages: every compared artifact (obs/SLO/energy
// exports, Results, reports) must be a pure function of the seed and
// the configuration, and the cheapest way to guarantee that is to make
// the ambient sources of entropy unreachable from model code.
//
// Four rules, each with its own message prefix:
//
//   - wall clock: time.Now, time.Since and friends read host time;
//     simulated time comes from des.Sim.Now. The one sanctioned
//     exception is the shard kernel's ShardDiag wall-clock telemetry,
//     which never enters compared artifacts (DESIGN.md §9).
//   - math/rand: the global functions draw from a process-global,
//     concurrency-order-dependent stream, and even seeded rand streams
//     changed across Go releases (1.20 gob, rand v2). All model
//     randomness flows through stats.RNG.
//   - environment: os.Getenv in a model package makes results depend
//     on invisible host state; configuration arrives through explicit
//     options structs.
//   - raw seed mixing: the splitmix64/xorshift magic constants outside
//     internal/stats mean someone is hand-rolling a seed derivation;
//     those belong in the stats substrate (SweepSeed, EntitySeed) so
//     stream independence arguments live in one reviewed place.
package nodeterm

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"warehousesim/internal/analysis"
)

// Analyzer is the nodeterm check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock, global math/rand, os.Getenv and ad-hoc seed mixing in simulation/export packages",
	Run:  run,
}

// wallClock lists the time package functions that read or wait on the
// host clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// envFuncs lists the os package functions that read ambient host
// configuration.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// mixConstants are the splitmix64 increment/mix multipliers and the
// xorshift64* multiplier used by stats.RNG. Their appearance outside
// the stats substrate is the signature of a hand-rolled PRNG or seed
// derivation.
var mixConstants = map[uint64]bool{
	0x9e3779b97f4a7c15: true,
	0xbf58476d1ce4e5b9: true,
	0x94d049bb133111eb: true,
	0x2545f4914f6cdd1d: true,
}

func run(pass *analysis.Pass) error {
	if !analysis.SimScope(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.BasicLit:
				checkLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSelector flags pkg.Func selections on the banned packages.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClock[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"wall clock: time.%s in a simulation package; simulated time comes from des.Sim.Now (seed-reproducible runs must not read host time)",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(sel.Pos(),
			"math/rand: rand.%s in a simulation package; all model randomness flows through stats.RNG so streams are stable across Go releases",
			sel.Sel.Name)
	case "os":
		if envFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"environment: os.%s in a simulation package; results must depend only on explicit configuration and the seed",
				sel.Sel.Name)
		}
	}
}

// checkLiteral flags the PRNG mixing constants.
func checkLiteral(pass *analysis.Pass, lit *ast.BasicLit) {
	if lit.Kind != token.INT {
		return
	}
	v, err := strconv.ParseUint(lit.Value, 0, 64)
	if err != nil || !mixConstants[v] {
		return
	}
	pass.Reportf(lit.Pos(),
		"raw seed mixing: PRNG mixing constant %s outside the stats substrate; derive seeds via stats.SweepSeed/stats.EntitySeed instead of hand-rolling splitmix64",
		lit.Value)
}
