package analysis_test

import (
	"encoding/json"
	"testing"

	"warehousesim/internal/analysis"
	"warehousesim/internal/analysis/analysistest"
	"warehousesim/internal/analysis/checks"
	"warehousesim/internal/analysis/hotpath"
	"warehousesim/internal/analysis/maprange"
	"warehousesim/internal/analysis/nodeterm"
	"warehousesim/internal/analysis/nohttp"
	"warehousesim/internal/analysis/obsname"
)

// Every fixture runs with the full KnownChecks registry, the way
// cmd/whvet invokes the framework, so directives for checks outside
// the analyzer under test stay valid.

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "nodeterm", []*analysis.Analyzer{nodeterm.Analyzer}, checks.Names())
}

func TestMaprange(t *testing.T) {
	analysistest.Run(t, "maprange", []*analysis.Analyzer{maprange.Analyzer}, checks.Names())
}

func TestNohttp(t *testing.T) {
	// The fixture's entry points live under its own cmd/ tree; point
	// the opt-in boundary there for the duration of the test.
	defer func(old []string) { nohttp.EntryPrefixes = old }(nohttp.EntryPrefixes)
	nohttp.EntryPrefixes = []string{"warehousesim/internal/analysis/testdata/src/nohttp/cmd/"}
	analysistest.Run(t, "nohttp", []*analysis.Analyzer{nohttp.Analyzer}, checks.Names())
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "hotpath", []*analysis.Analyzer{hotpath.Analyzer}, checks.Names())
}

func TestObsname(t *testing.T) {
	analysistest.Run(t, "obsname", []*analysis.Analyzer{obsname.Analyzer}, checks.Names())
}

// TestFindingJSONShape pins the field names of the -json schema
// (warehousesim-whvet/v1): downstream tooling greps these keys the
// same way it greps whcost -json.
func TestFindingJSONShape(t *testing.T) {
	b, err := json.Marshal(analysis.Finding{
		File: "a.go", Line: 3, Col: 7, Check: "nodeterm", Message: "m",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"a.go","line":3,"col":7,"check":"nodeterm","message":"m"}`
	if string(b) != want {
		t.Fatalf("Finding JSON = %s, want %s", b, want)
	}
}

// TestRegistryNames pins the registry: adding or renaming a check is a
// reviewed act (directive grammar and CI docs name them).
func TestRegistryNames(t *testing.T) {
	got := checks.Names()
	want := []string{"nodeterm", "maprange", "nohttp", "hotpath", "obsname"}
	if len(got) != len(want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
}
