// Package core assembles the paper's contribution: ensemble-level
// server designs combining a base platform, a packaging/cooling
// architecture, memory sharing across the enclosure, and the disk
// subsystem — and an evaluation pipeline producing the paper's
// performance/cost metrics for each (benchmark, design) pair.
//
// The two unified designs of §3.6 are provided as NewN1 (near-term:
// mobile blades in dual-entry enclosures with directed airflow) and
// NewN2 (longer-term: embedded microblades with aggregated cooling,
// memory sharing, and flash-fronted remote laptop disks).
package core

import (
	"fmt"

	"warehousesim/internal/cooling"
	"warehousesim/internal/cost"
	"warehousesim/internal/memblade"
	"warehousesim/internal/platform"
)

// StorageKind selects the disk subsystem of a design (§3.5).
type StorageKind int

// The disk subsystems studied in Table 3.
const (
	// LocalDiskStorage is the platform's on-board disk.
	LocalDiskStorage StorageKind = iota
	// RemoteLaptopStorage is a laptop disk on the SAN.
	RemoteLaptopStorage
	// RemoteLaptopFlashStorage fronts the SAN laptop disk with the
	// on-board flash cache.
	RemoteLaptopFlashStorage
	// RemoteLaptop2FlashStorage uses the cheaper laptop-2 disk variant.
	RemoteLaptop2FlashStorage
	// FlashSSDStorage replaces the disk with a flash solid-state device
	// entirely — the §4 "flash as a disk replacement" extension.
	FlashSSDStorage
)

// String implements fmt.Stringer.
func (k StorageKind) String() string {
	switch k {
	case LocalDiskStorage:
		return "local-disk"
	case RemoteLaptopStorage:
		return "remote-laptop"
	case RemoteLaptopFlashStorage:
		return "remote-laptop+flash"
	case RemoteLaptop2FlashStorage:
		return "remote-laptop2+flash"
	case FlashSSDStorage:
		return "flash-ssd"
	default:
		return fmt.Sprintf("StorageKind(%d)", int(k))
	}
}

// Design is a complete ensemble-level server architecture.
type Design struct {
	Name string
	// Base is the platform the design builds on (Table 2).
	Base platform.Server
	// Enclosure selects the packaging/cooling architecture (§3.3).
	Enclosure cooling.Design
	// Memory, when non-nil, applies ensemble memory sharing (§3.4); its
	// AssumedSlowdown feeds the performance model.
	Memory *memblade.Scheme
	// Storage selects the disk subsystem (§3.5).
	Storage StorageKind
}

// Validate reports structurally invalid designs.
func (d Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("core: design has no name")
	}
	if err := d.Base.Validate(); err != nil {
		return err
	}
	if d.Memory != nil {
		if err := d.Memory.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// BaselineDesign wraps a Table 2 platform in the conventional 1U
// packaging with its local disk — the paper's status quo.
func BaselineDesign(s platform.Server) Design {
	return Design{
		Name:      s.Name,
		Base:      s,
		Enclosure: cooling.Conventional,
		Storage:   LocalDiskStorage,
	}
}

// AllBaselines returns the six Table 2 platforms as baseline designs.
func AllBaselines() []Design {
	all := platform.All()
	out := make([]Design, len(all))
	for i, s := range all {
		out[i] = BaselineDesign(s)
	}
	return out
}

// NewN1 is the near-term unified design of §3.6: mobile blades housed
// in dual-entry enclosures with directed airflow; no memory sharing or
// flash disk caching yet.
func NewN1() Design {
	return Design{
		Name:      "N1",
		Base:      platform.Mobl(),
		Enclosure: cooling.DualEntry,
		Storage:   LocalDiskStorage,
	}
}

// NewN2 is the longer-term unified design of §3.6: embedded (emb1-class)
// microblades with aggregated cooling in a directed-airflow enclosure,
// ensemble memory sharing (dynamic provisioning), and remote low-power
// laptop disks with flash-based disk caching.
func NewN2() Design {
	scheme := memblade.DynamicScheme()
	return Design{
		Name:      "N2",
		Base:      platform.Emb1(),
		Enclosure: cooling.AggregatedMicroblade,
		Memory:    &scheme,
		Storage:   RemoteLaptopFlashStorage,
	}
}

// Resolved is a design lowered onto concrete hardware: the effective
// per-server BoM (after memory re-provisioning, disk swap and cooling
// re-design), the rack it is packed into, and bookkeeping for reports.
type Resolved struct {
	Design  Design
	Server  platform.Server
	Rack    platform.Rack
	Density int
	// CoolingEfficiency is the fan-power advantage over conventional
	// packaging.
	CoolingEfficiency float64
}

// minFanPriceUSD floors the shared-plenum fan cost share per server.
const minFanPriceUSD = 10

// Resolve lowers the design onto concrete hardware.
func (d Design) Resolve() (Resolved, error) {
	if err := d.Validate(); err != nil {
		return Resolved{}, err
	}
	srv := d.Base

	// Disk subsystem (§3.5). Remote disks leave the board: their price
	// and power still accrue per server (the SAN holds one spindle per
	// server), but the small form factor is what enables microblade
	// packaging.
	switch d.Storage {
	case RemoteLaptopStorage:
		srv.Disk = platform.DiskLaptop()
	case RemoteLaptopFlashStorage:
		srv.Disk = platform.DiskLaptop()
		fl := platform.FlashCacheDevice()
		srv.Flash = &fl
	case RemoteLaptop2FlashStorage:
		srv.Disk = platform.DiskLaptop2()
		fl := platform.FlashCacheDevice()
		srv.Flash = &fl
	case FlashSSDStorage:
		// Carry the SSD's economics in the Disk slot so the BoM and
		// power accounting stay uniform; the performance path uses
		// cluster.FlashOnlyDisk.
		ssd := platform.FlashSSD()
		srv.Disk = platform.Disk{
			Name:          "flash-ssd",
			BandwidthMBps: ssd.BandwidthMBps,
			AvgAccessMs:   ssd.ReadUs / 1e3,
			CapacityGB:    ssd.CapacityGB,
			PowerW:        ssd.PowerW,
			PriceUSD:      ssd.PriceUSD,
		}
	}

	// Memory sharing (§3.4).
	if d.Memory != nil {
		var err error
		srv, err = d.Memory.Apply(srv)
		if err != nil {
			return Resolved{}, err
		}
	}

	// Packaging and cooling (§3.3): recompute fan power from the IT
	// power under the enclosure's airflow model, and scale the per-server
	// fan/plenum cost share with it.
	enc := cooling.EnclosureFor(d.Enclosure)
	itPower := srv.MaxPowerW() - srv.FanPowerW
	baseFanPower := srv.FanPowerW
	newFanPower := enc.FanPowerW(itPower)
	if newFanPower > baseFanPower && d.Enclosure != cooling.Conventional {
		// The new enclosures never need more fan power than 1U boxes.
		newFanPower = baseFanPower
	}
	if d.Enclosure != cooling.Conventional {
		srv.FanPriceUSD = srv.FanPriceUSD * newFanPower / baseFanPower
		if srv.FanPriceUSD < minFanPriceUSD {
			srv.FanPriceUSD = minFanPriceUSD
		}
		srv.FanPowerW = newFanPower
	}

	density := enc.Density(srv.MaxPowerW())
	rack := platform.DefaultRack()
	// Switch ports scale with density; the per-server switch share stays
	// constant while racks hold more systems.
	rack.Name = fmt.Sprintf("42U-%s", enc.Design)
	rack.SwitchPriceUSD = rack.SwitchPriceUSD * float64(density) / 40
	rack.SwitchPowerW = rack.SwitchPowerW * float64(density) / 40
	rack.ServersPerRack = density

	return Resolved{
		Design:            d,
		Server:            srv,
		Rack:              rack,
		Density:           density,
		CoolingEfficiency: enc.EfficiencyVsConventional(),
	}, nil
}

// ServerTCO is a convenience returning the resolved design's per-server
// cost triple under the given cost model.
func (r Resolved) ServerTCO(m cost.Model) (infUSD, pcUSD, totalUSD float64) {
	return m.ServerTCO(r.Server, r.Rack)
}
