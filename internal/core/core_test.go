package core

import (
	"math"
	"testing"

	"warehousesim/internal/cooling"
	"warehousesim/internal/cost"
	"warehousesim/internal/memblade"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
	"warehousesim/internal/workload"
)

func TestBaselineDesignsResolveToCatalog(t *testing.T) {
	for _, d := range AllBaselines() {
		r, err := d.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		orig, _ := platform.ByName(d.Name)
		if r.Server.HardwarePriceUSD() != orig.HardwarePriceUSD() {
			t.Errorf("%s: baseline resolve changed price", d.Name)
		}
		if r.Server.MaxPowerW() != orig.MaxPowerW() {
			t.Errorf("%s: baseline resolve changed power", d.Name)
		}
		if r.Density != 40 {
			t.Errorf("%s: baseline density %d", d.Name, r.Density)
		}
	}
}

func TestDesignValidate(t *testing.T) {
	d := NewN1()
	d.Name = ""
	if d.Validate() == nil {
		t.Error("unnamed design accepted")
	}
	d = NewN2()
	d.Memory.RemoteDiscount = 1.5
	if d.Validate() == nil {
		t.Error("invalid memory scheme accepted")
	}
}

func TestN1Resolution(t *testing.T) {
	r, err := NewN1().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	base := platform.Mobl()
	if r.Server.FanPowerW >= base.FanPowerW {
		t.Errorf("dual-entry fans (%gW) not below 1U fans (%gW)",
			r.Server.FanPowerW, base.FanPowerW)
	}
	if r.Density != 320 {
		t.Errorf("N1 density = %d, paper says 320 blades/rack", r.Density)
	}
	if r.CoolingEfficiency < 1.8 {
		t.Errorf("N1 cooling efficiency = %g", r.CoolingEfficiency)
	}
	// Memory and disk untouched.
	if r.Server.Memory != base.Memory || r.Server.Disk != base.Disk {
		t.Error("N1 changed memory or disk")
	}
}

func TestN2Resolution(t *testing.T) {
	r, err := NewN2().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	base := platform.Emb1()
	if r.Server.Disk.Name != "laptop-san" || !r.Server.Disk.Remote {
		t.Errorf("N2 disk = %+v, want remote laptop", r.Server.Disk)
	}
	if r.Server.Flash == nil {
		t.Fatal("N2 lacks flash cache")
	}
	if r.Server.Memory.PriceUSD >= base.Memory.PriceUSD {
		t.Error("N2 memory sharing did not cut memory cost")
	}
	if r.Server.Memory.PowerW >= base.Memory.PowerW {
		t.Error("N2 memory sharing did not cut memory power")
	}
	if r.Density != 1250 {
		t.Errorf("N2 density = %d, paper says 1250 systems/rack", r.Density)
	}
	if r.Server.MaxPowerW() >= base.MaxPowerW() {
		t.Errorf("N2 power %gW not below emb1 %gW", r.Server.MaxPowerW(), base.MaxPowerW())
	}
}

func TestRackScalesWithDensity(t *testing.T) {
	r, err := NewN2().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Per-server switch share stays constant when ports scale with
	// density.
	if math.Abs(r.Rack.SwitchPricePerServer()-2750.0/40) > 1e-9 {
		t.Errorf("switch share per server = %g", r.Rack.SwitchPricePerServer())
	}
	if r.Rack.ServersPerRack != 1250 {
		t.Errorf("rack holds %d", r.Rack.ServersPerRack)
	}
}

func TestStorageKindStrings(t *testing.T) {
	want := map[StorageKind]string{
		LocalDiskStorage:          "local-disk",
		RemoteLaptopStorage:       "remote-laptop",
		RemoteLaptopFlashStorage:  "remote-laptop+flash",
		RemoteLaptop2FlashStorage: "remote-laptop2+flash",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestEvaluateProducesFullSuite(t *testing.T) {
	ev := NewEvaluator()
	tbl, err := ev.EvaluateSuite([]Design{BaselineDesign(platform.Srvr1()), NewN1(), NewN2()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Rows()); got != 3*5 {
		t.Fatalf("rows = %d, want 15", got)
	}
	for _, m := range tbl.Rows() {
		if m.Perf <= 0 || m.TCOUSD <= 0 || m.PowerW <= 0 {
			t.Errorf("degenerate measurement %+v", m)
		}
	}
}

// The headline result (§3.6 / abstract): N1 and N2 deliver large
// Perf/TCO-$ gains on ytube and mapreduce, with N2 ahead of N1, and a
// suite-level harmonic-mean improvement of roughly 1.5-2X.
func TestUnifiedDesignsBeatBaseline(t *testing.T) {
	ev := NewEvaluator()
	tbl, err := ev.EvaluateSuite([]Design{BaselineDesign(platform.Srvr1()), NewN1(), NewN2()})
	if err != nil {
		t.Fatal(err)
	}
	rel := tbl.Relative(metrics.PerfPerTCO, "srvr1")
	for _, w := range []string{"ytube", "mapred-wc", "mapred-wr"} {
		if rel[w]["N1"] < 1.5 {
			t.Errorf("%s: N1 Perf/TCO = %.2fx, expected >= 1.5x", w, rel[w]["N1"])
		}
		if rel[w]["N2"] < 2.5 {
			t.Errorf("%s: N2 Perf/TCO = %.2fx, expected >= 2.5x", w, rel[w]["N2"])
		}
		if rel[w]["N2"] <= rel[w]["N1"] {
			t.Errorf("%s: N2 (%.2fx) not ahead of N1 (%.2fx)", w, rel[w]["N2"], rel[w]["N1"])
		}
	}
	hm := tbl.HMeanRelative(metrics.PerfPerTCO, "srvr1")
	if hm["N1"] < 1.2 || hm["N1"] > 3 {
		t.Errorf("N1 suite hmean = %.2fx, paper ~1.5x", hm["N1"])
	}
	if hm["N2"] < 1.5 || hm["N2"] > 4 {
		t.Errorf("N2 suite hmean = %.2fx, paper ~2x", hm["N2"])
	}
	if hm["N2"] <= hm["N1"] {
		t.Errorf("N2 hmean (%.2f) not ahead of N1 (%.2f)", hm["N2"], hm["N1"])
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	run := func() []metrics.Measurement {
		ev := NewEvaluator()
		ms, err := ev.Evaluate(NewN2(), workload.SuiteProfiles())
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic evaluation at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFlashHitRatesPlausible(t *testing.T) {
	ev := NewEvaluator()
	for _, p := range workload.SuiteProfiles() {
		hr, err := ev.flashHitRate(p)
		if err != nil {
			t.Fatal(err)
		}
		if hr < 0 || hr > 1 {
			t.Fatalf("%s: hit rate %g", p.Name, hr)
		}
	}
	// Cached: second call must not re-simulate (same value, fast).
	p := workload.WebsearchProfile()
	a, _ := ev.flashHitRate(p)
	b, _ := ev.flashHitRate(p)
	if a != b {
		t.Error("hit rate cache inconsistent")
	}
}

func TestMemorySchemeFeedsSlowdown(t *testing.T) {
	ev := NewEvaluator()
	withMem := NewN2()
	noMem := NewN2()
	noMem.Name = "N2-nomem"
	noMem.Memory = nil

	p := []workload.Profile{workload.YtubeProfile()}
	a, err := ev.Evaluate(withMem, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Evaluate(noMem, p)
	if err != nil {
		t.Fatal(err)
	}
	// Memory sharing costs ~2% perf but cuts dollars; check both moved
	// in the expected directions.
	if a[0].Perf >= b[0].Perf {
		t.Errorf("memory slowdown did not reduce perf: %g vs %g", a[0].Perf, b[0].Perf)
	}
	if a[0].TCOUSD >= b[0].TCOUSD {
		t.Errorf("memory sharing did not cut TCO: %g vs %g", a[0].TCOUSD, b[0].TCOUSD)
	}
}

func TestResolveRejectsInvalidMemoryScheme(t *testing.T) {
	d := NewN2()
	bad := memblade.Scheme{Name: "bad", LocalFraction: 0, RemoteFraction: 1}
	d.Memory = &bad
	if _, err := d.Resolve(); err == nil {
		t.Error("invalid scheme resolved")
	}
}

func TestServerTCOConsistentWithCostModel(t *testing.T) {
	r, err := NewN1().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	m := cost.DefaultModel()
	inf, pc, tot := r.ServerTCO(m)
	if math.Abs(inf+pc-tot) > 1e-9 || inf <= 0 || pc <= 0 {
		t.Errorf("TCO triple inconsistent: %g + %g != %g", inf, pc, tot)
	}
}

func TestRackFor(t *testing.T) {
	rack, err := RackFor(NewN1())
	if err != nil {
		t.Fatal(err)
	}
	if rack.ServersPerRack != 320 {
		t.Errorf("N1 rack = %d", rack.ServersPerRack)
	}
	if _, err := RackFor(Design{}); err == nil {
		t.Error("empty design accepted")
	}
}

func TestClusterConfigExposesStorage(t *testing.T) {
	ev := NewEvaluator()
	cfg, err := ev.ClusterConfig(NewN2(), workload.YtubeProfile())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Storage == nil {
		t.Fatal("N2 cluster config lost its storage subsystem")
	}
	if cfg.MemSlowdown != NewN2().Memory.AssumedSlowdown {
		t.Errorf("memory slowdown not carried: %g", cfg.MemSlowdown)
	}
	// Baselines keep the local disk (nil storage override).
	cfg, err = ev.ClusterConfig(BaselineDesign(platform.Desk()), workload.YtubeProfile())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Storage != nil {
		t.Error("baseline should use the local disk")
	}
	if _, err := ev.ClusterConfig(Design{}, workload.YtubeProfile()); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestFlashSSDStorageResolution(t *testing.T) {
	d := BaselineDesign(platform.Emb1())
	d.Name = "emb1-ssd"
	d.Storage = FlashSSDStorage
	r, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Server.Disk.Name != "flash-ssd" {
		t.Errorf("disk = %+v", r.Server.Disk)
	}
	ssd := platform.FlashSSD()
	if r.Server.Disk.PriceUSD != ssd.PriceUSD || r.Server.Disk.PowerW != ssd.PowerW {
		t.Error("SSD economics not carried into the BoM")
	}
	// Evaluation must route through the flash-only storage path and
	// boost the IO-bound benchmark.
	ev := NewEvaluator()
	tbl, err := ev.EvaluateSuite([]Design{BaselineDesign(platform.Emb1()), d})
	if err != nil {
		t.Fatal(err)
	}
	rel := tbl.Relative(metrics.Perf, "emb1")
	if rel["ytube"]["emb1-ssd"] < 1.5 {
		t.Errorf("SSD did not unbind ytube: %.2fx", rel["ytube"]["emb1-ssd"])
	}
	// And the BoM must be pricier than the desktop disk baseline.
	base, _ := tbl.Get("ytube", "emb1")
	withSSD, _ := tbl.Get("ytube", "emb1-ssd")
	if withSSD.InfUSD <= base.InfUSD {
		t.Error("SSD should raise infrastructure cost")
	}
}

func TestConventionalEnclosureKeepsCatalogFans(t *testing.T) {
	d := BaselineDesign(platform.Srvr1())
	d.Enclosure = cooling.Conventional
	r, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Server.FanPowerW != platform.Srvr1().FanPowerW {
		t.Errorf("conventional resolve changed fan power to %g", r.Server.FanPowerW)
	}
}
