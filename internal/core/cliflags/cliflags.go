// Package cliflags centralizes the flag wiring the cmd/* mains share:
// pprof profile capture, obs recording/export, worker parallelism, the
// live-introspection HTTP endpoint, the sharded-rack topology, and the
// hybrid fleet model. Each
// Add* helper registers its flags on a caller-supplied FlagSet (the
// mains pass flag.CommandLine) and returns a handle whose methods apply
// the conventions that every tool previously re-implemented by hand —
// "-obs-out implies -obs", "-par must be >= 1", "-shards picks the rack
// model" — so the five binaries cannot drift apart on them.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"warehousesim/internal/cluster"
	"warehousesim/internal/obs"
)

// Profiles is the -cpuprofile/-memprofile pair.
type Profiles struct {
	cpu, mem *string
}

// AddProfiles registers the pprof capture flags.
func AddProfiles(fs *flag.FlagSet) *Profiles {
	return &Profiles{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a pprof heap profile to this file"),
	}
}

// Start begins the requested captures; the returned stop must run at
// exit (it finishes the CPU profile and writes the heap snapshot).
func (p *Profiles) Start() (stop func() error, err error) {
	return obs.StartProfiles(*p.cpu, *p.mem)
}

// Obs is the -obs/-obs-out pair.
type Obs struct {
	on         *bool
	out        *string
	defaultOut string
}

// AddObs registers the recording flags. what finishes the -obs usage
// sentence ("record <what>"); defaultOut is the export path used when
// -obs is set without -obs-out.
func AddObs(fs *flag.FlagSet, what, defaultOut string) *Obs {
	return &Obs{
		on: fs.Bool("obs", false, "record "+what),
		out: fs.String("obs-out", "",
			"write the obs export here (.csv for CSV, else JSONL; implies -obs; default "+defaultOut+")"),
		defaultOut: defaultOut,
	}
}

// Enabled applies the "-obs-out implies -obs" convention and reports
// whether recording was requested. Call after flag parsing.
func (o *Obs) Enabled() bool {
	return *o.on || *o.out != ""
}

// Path resolves the export destination.
func (o *Obs) Path() string {
	if *o.out != "" {
		return *o.out
	}
	return o.defaultOut
}

// Par is the -par worker-count flag.
type Par struct {
	n *int
}

// AddPar registers -par with the given default and usage.
func AddPar(fs *flag.FlagSet, def int, usage string) *Par {
	return &Par{n: fs.Int("par", def, usage)}
}

// Value validates and returns the worker count.
func (p *Par) Value() (int, error) {
	if *p.n < 1 {
		return 0, fmt.Errorf("-par must be >= 1, got %d", *p.n)
	}
	return *p.n, nil
}

// HTTP is the -http live-introspection flag. It only parses the
// address: starting the server is the main's job, via
// introspect.ServeAddr(h.Addr()), so that net/http links only into the
// binaries that opt in (the nohttp boundary, DESIGN.md §11) rather
// than into everything that imports cliflags.
type HTTP struct {
	addr *string
}

// AddHTTP registers -http. snapshot describes what the /obs endpoint
// serves for this tool (e.g. "/obs snapshot with per-experiment
// progress").
func AddHTTP(fs *flag.FlagSet, snapshot string) *HTTP {
	return &HTTP{addr: fs.String("http", "",
		"serve live introspection ("+snapshot+", /debug/pprof) on this address, e.g. :6060")}
}

// Addr returns the parsed -http address ("" when unset). Pass it to
// introspect.ServeAddr from the main.
func (h *HTTP) Addr() string { return *h.addr }

// Sharding is the rack-topology flag group: -shards selects the sharded
// multi-enclosure model (0 keeps the flat single-server model), with
// -enclosures/-boards/-clients-per-board sizing the rack, -placement
// choosing the enclosure-to-shard packing, and -shard-diag exporting
// the engine's synchronization diagnostics.
type Sharding struct {
	fs                          *flag.FlagSet
	shards, enclosures, clients *int
	boards                      *string
	placement                   *string
	diagOut                     *string
}

// AddSharding registers the rack flags.
func AddSharding(fs *flag.FlagSet) *Sharding {
	return &Sharding{
		fs: fs,
		shards: fs.Int("shards", 0,
			"run the sharded multi-enclosure rack model with this many event heaps (0 = flat single-server model; results are identical at every value >= 1)"),
		enclosures: fs.Int("enclosures", 4, "rack enclosures (with -shards)"),
		boards: fs.String("boards", "4",
			"server boards per enclosure (with -shards): one count for a uniform rack, or a comma list like 8,2,2,2 for a skewed one (sets -enclosures from its length unless -enclosures is given)"),
		clients: fs.Int("clients-per-board", 0,
			"closed-loop clients per board for interactive rack runs (0 = default provisioning; with -shards)"),
		placement: fs.String("placement", "",
			"enclosure-to-shard placement: block (contiguous split, the default) or balanced (deterministic load-aware bin-packing; with -shards)"),
		diagOut: fs.String("shard-diag", "",
			"write the shard engine's scheduling-dependent diagnostics (clock skew, mailbox depth) here as JSONL (with -shards)"),
	}
}

// Enabled reports whether the rack model was selected.
func (s *Sharding) Enabled() bool { return *s.shards > 0 }

// parseBoards splits the -boards value: a single count means a uniform
// rack (per > 0, list nil), a comma list a skewed one (list non-nil).
func parseBoards(v string) (per int, list []int, err error) {
	parts := strings.Split(v, ",")
	if len(parts) == 1 {
		per, err = strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return 0, nil, fmt.Errorf("-boards %q: want a board count or a comma list of counts", v)
		}
		return per, nil, nil
	}
	list = make([]int, len(parts))
	for i, p := range parts {
		list[i], err = strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, nil, fmt.Errorf("-boards %q: entry %d is not a board count", v, i)
		}
	}
	return 0, list, nil
}

// explicitlySet reports whether the named flag appeared on the command
// line (as opposed to holding its default).
func (s *Sharding) explicitlySet(name string) bool {
	set := false
	s.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// Topology builds the cluster topology, nil when -shards was not
// given. A comma-list -boards yields a heterogeneous rack and, when
// -enclosures was not passed explicitly, sizes the rack from the
// list's length. Topology validation happens in SimOptions.Normalize;
// -boards syntax errors are caught by Validate.
func (s *Sharding) Topology() *cluster.ShardedTopology {
	if !s.Enabled() {
		return nil
	}
	t := s.RackTemplate()
	return &t
}

// RackTemplate builds the rack topology value regardless of whether
// -shards selected the rack model — the fleet group uses it as the
// per-rack template, where the rack flags are sizing hints rather than
// the model selector (a fleet run shards each hot rack with -shards,
// defaulting to 1 when unset).
func (s *Sharding) RackTemplate() cluster.ShardedTopology {
	per, list, err := parseBoards(*s.boards)
	if err != nil {
		per, list = 0, nil // Validate reports the syntax error loudly
	}
	encl := *s.enclosures
	if list != nil && !s.explicitlySet("enclosures") {
		encl = len(list)
	}
	return cluster.ShardedTopology{
		Enclosures:         encl,
		BoardsPerEnclosure: per,
		Boards:             list,
		ClientsPerBoard:    *s.clients,
		Shards:             *s.shards,
		Placement:          *s.placement,
	}
}

// DiagOut returns the -shard-diag path ("" when unset).
func (s *Sharding) DiagOut() string { return *s.diagOut }

// Validate rejects contradictory combinations instead of silently
// ignoring them: -shard-diag and -placement configure the shard
// engine, which only exists when -shards selects the rack model, and a
// malformed -boards list must fail here rather than surface as a
// confusing topology error.
func (s *Sharding) Validate() error {
	if *s.diagOut != "" && !s.Enabled() {
		return fmt.Errorf("-shard-diag %s needs the sharded rack model: pass -shards N (the flat model has no shard engine to diagnose)", *s.diagOut)
	}
	if *s.placement != "" && !s.Enabled() {
		return fmt.Errorf("-placement %s needs the sharded rack model: pass -shards N (the flat model has nothing to place)", *s.placement)
	}
	if _, _, err := parseBoards(*s.boards); err != nil {
		return err
	}
	return nil
}

// Fleet is the fleet-model flag group: -racks selects the hybrid
// fleet model (0 keeps whatever -shards selected), -hot-racks/-hot-set
// choose which racks run full DES, and -balancer picks the routing
// policy. The rack flags (-enclosures/-boards/-clients-per-board/
// -shards/-placement) size the per-rack template.
type Fleet struct {
	fs       *flag.FlagSet
	racks    *int
	hot      *int
	hotSet   *string
	balancer *string
	sharding *Sharding
}

// AddFleet registers the fleet flags. sharding supplies the per-rack
// template (and must be registered on the same FlagSet).
func AddFleet(fs *flag.FlagSet, sharding *Sharding) *Fleet {
	return &Fleet{
		fs:       fs,
		sharding: sharding,
		racks: fs.Int("racks", 0,
			"run the hybrid fleet model with this many racks (0 = single rack or flat model; hot racks run full DES, cold racks the analytic stand-in)"),
		hot: fs.Int("hot-racks", 0,
			"number of racks simulated with full DES (with -racks; 0 with no -hot-set = fully analytic fleet)"),
		hotSet: fs.String("hot-set", "",
			"comma list of hot rack ids, e.g. 3,9 (with -racks; default 0..hot-racks-1; ordering never changes results)"),
		balancer: fs.String("balancer", "",
			"fleet load-balancer policy: wrr (capacity-weighted round-robin, the default) or least-loaded (with -racks)"),
	}
}

// Enabled reports whether the fleet model was selected.
func (f *Fleet) Enabled() bool { return *f.racks > 0 }

// parseHotSet splits the -hot-set comma list; membership rules are
// validated downstream by FleetTopology.Normalize.
func parseHotSet(v string) ([]int, error) {
	if v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	ids := make([]int, len(parts))
	for i, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-hot-set %q: entry %d is not a rack id", v, i)
		}
		ids[i] = id
	}
	return ids, nil
}

// Topology builds the fleet topology, nil when -racks was not given.
// The rack flags provide the per-rack template; fleet-shape validation
// happens in SimOptions.Normalize.
func (f *Fleet) Topology() *cluster.FleetTopology {
	if !f.Enabled() {
		return nil
	}
	hotSet, err := parseHotSet(*f.hotSet)
	if err != nil {
		hotSet = nil // Validate reports the syntax error loudly
	}
	return &cluster.FleetTopology{
		Racks:    *f.racks,
		HotRacks: *f.hot,
		HotSet:   hotSet,
		Rack:     f.sharding.RackTemplate(),
		Balancer: *f.balancer,
	}
}

// Validate rejects fleet flags without -racks: -hot-racks, -hot-set,
// and -balancer configure the fleet's balancer tier, which only exists
// when -racks selects the fleet model (the same pattern as -shard-diag
// without -shards). A malformed -hot-set fails here too.
func (f *Fleet) Validate() error {
	if !f.Enabled() {
		if *f.hot != 0 {
			return fmt.Errorf("-hot-racks %d needs the fleet model: pass -racks N (a single rack has no hot/cold split)", *f.hot)
		}
		if *f.hotSet != "" {
			return fmt.Errorf("-hot-set %s needs the fleet model: pass -racks N (a single rack has no hot/cold split)", *f.hotSet)
		}
		if *f.balancer != "" {
			return fmt.Errorf("-balancer %s needs the fleet model: pass -racks N (a single rack has no balancer tier)", *f.balancer)
		}
		return nil
	}
	if _, err := parseHotSet(*f.hotSet); err != nil {
		return err
	}
	return nil
}

// SLO is the -slo-window/-slo-out pair for the windowed SLO metrics
// plane.
type SLO struct {
	fs     *flag.FlagSet
	window *time.Duration
	out    *string
}

// AddSLO registers the windowed-SLO flags.
func AddSLO(fs *flag.FlagSet) *SLO {
	return &SLO{
		fs: fs,
		window: fs.Duration("slo-window", 0,
			"collect windowed SLO metrics over tumbling windows of this simulated-time width, e.g. 1s (implies -obs)"),
		out: fs.String("slo-out", "",
			"write the windowed SLO export here as JSONL (implies -slo-window 1s when -slo-window is unset)"),
	}
}

// WindowSec applies the "-slo-out implies -slo-window 1s" convention
// and returns the window width in simulated seconds (0 = windowing
// off). Call after flag parsing; widths are validated downstream by
// SimOptions.Normalize.
func (s *SLO) WindowSec() float64 {
	if *s.window > 0 {
		return s.window.Seconds()
	}
	if *s.out != "" {
		return 1
	}
	return 0
}

// Enabled reports whether windowed-SLO collection was requested.
func (s *SLO) Enabled() bool { return s.WindowSec() > 0 }

// OutPath returns the -slo-out path ("" when unset).
func (s *SLO) OutPath() string { return *s.out }

// Validate rejects contradictory combinations. "-slo-out implies
// -slo-window 1s" stays (WindowSec), but an explicit "-slo-window 0"
// alongside -slo-out asks for an export of a plane it just disabled —
// that's an error, not a silent empty file.
func (s *SLO) Validate() error {
	if *s.out == "" || *s.window > 0 {
		return nil
	}
	explicitZero := false
	s.fs.Visit(func(f *flag.Flag) {
		if f.Name == "slo-window" {
			explicitZero = true
		}
	})
	if explicitZero {
		return fmt.Errorf("-slo-out %s conflicts with -slo-window 0: the export needs a window width (drop -slo-window to get the 1s default, or pass a positive width)", *s.out)
	}
	return nil
}

// Energy is the -energy-window/-energy-out pair for the time-resolved
// energy plane.
type Energy struct {
	window *time.Duration
	out    *string
}

// AddEnergy registers the energy-plane flags.
func AddEnergy(fs *flag.FlagSet) *Energy {
	return &Energy{
		window: fs.Duration("energy-window", 0,
			"derive watts/joules from recorded utilization over tumbling windows of this simulated-time width, e.g. 1s (implies -obs)"),
		out: fs.String("energy-out", "",
			"write the energy export (windows, totals, proportionality curve) here as JSONL (requires -energy-window)"),
	}
}

// WindowSec returns the energy window width in simulated seconds
// (0 = energy plane off). Widths are validated downstream by
// SimOptions.Normalize.
func (e *Energy) WindowSec() float64 { return e.window.Seconds() }

// Enabled reports whether energy collection was requested.
func (e *Energy) Enabled() bool { return *e.window > 0 }

// OutPath returns the -energy-out path ("" when unset).
func (e *Energy) OutPath() string { return *e.out }

// Validate rejects -energy-out without a window width: unlike -slo-out
// there is no implied default, because the energy integral's resolution
// is a modeling choice the caller must make.
func (e *Energy) Validate() error {
	if *e.out != "" && *e.window <= 0 {
		return fmt.Errorf("-energy-out %s requires -energy-window (e.g. -energy-window 1s): the export needs a window width", *e.out)
	}
	return nil
}

// Validator is any flag group with cross-flag consistency rules.
type Validator interface{ Validate() error }

// Validate runs every group's cross-flag checks and returns the first
// error. Mains call it once after flag.Parse so contradictory flag
// combinations fail loudly instead of being silently ignored.
func Validate(groups ...Validator) error {
	for _, g := range groups {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}
