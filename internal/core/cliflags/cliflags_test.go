package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// newSet builds a quiet FlagSet with every validated group registered,
// parses args, and returns the groups.
func newSet(t *testing.T, args ...string) (*Sharding, *SLO, *Energy) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sh := AddSharding(fs)
	slo := AddSLO(fs)
	en := AddEnergy(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return sh, slo, en
}

func TestValidateFlagCombinations(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; "" = valid
	}{
		{"empty", nil, ""},
		{"slo-out-implies-window", []string{"-slo-out", "x.jsonl"}, ""},
		{"slo-out-with-window", []string{"-slo-window", "2s", "-slo-out", "x.jsonl"}, ""},
		{"slo-out-with-explicit-zero", []string{"-slo-window", "0s", "-slo-out", "x.jsonl"}, "-slo-window 0"},
		{"slo-explicit-zero-alone", []string{"-slo-window", "0s"}, ""},
		{"energy-out-alone", []string{"-energy-out", "e.jsonl"}, "requires -energy-window"},
		{"energy-out-with-window", []string{"-energy-window", "1s", "-energy-out", "e.jsonl"}, ""},
		{"energy-window-alone", []string{"-energy-window", "1s"}, ""},
		{"shard-diag-without-shards", []string{"-shard-diag", "d.jsonl"}, "needs the sharded rack model"},
		{"shard-diag-with-shards", []string{"-shards", "2", "-shard-diag", "d.jsonl"}, ""},
		{"placement-without-shards", []string{"-placement", "balanced"}, "needs the sharded rack model"},
		{"placement-with-shards", []string{"-shards", "2", "-placement", "balanced"}, ""},
		{"boards-list", []string{"-shards", "2", "-boards", "8,2,2,2"}, ""},
		{"boards-garbage", []string{"-shards", "2", "-boards", "many"}, "-boards"},
		{"boards-list-garbage", []string{"-shards", "2", "-boards", "8,x,2"}, "entry 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh, slo, en := newSet(t, tc.args...)
			err := Validate(sh, slo, en)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate(%v) accepted, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate(%v) = %q, want substring %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestSLOConventions(t *testing.T) {
	_, slo, _ := newSet(t, "-slo-out", "x.jsonl")
	if got := slo.WindowSec(); got != 1 {
		t.Errorf("-slo-out alone: WindowSec = %g, want the implied 1s", got)
	}
	if !slo.Enabled() || slo.OutPath() != "x.jsonl" {
		t.Errorf("Enabled %v OutPath %q", slo.Enabled(), slo.OutPath())
	}
	_, slo, _ = newSet(t, "-slo-window", "250ms")
	if got := slo.WindowSec(); got != 0.25 {
		t.Errorf("WindowSec = %g, want 0.25", got)
	}
	_, slo, _ = newSet(t)
	if slo.Enabled() {
		t.Error("SLO enabled with no flags")
	}
}

func TestEnergyAccessors(t *testing.T) {
	_, _, en := newSet(t, "-energy-window", "500ms", "-energy-out", "e.jsonl")
	if got := en.WindowSec(); got != 0.5 {
		t.Errorf("WindowSec = %g, want 0.5", got)
	}
	if !en.Enabled() || en.OutPath() != "e.jsonl" {
		t.Errorf("Enabled %v OutPath %q", en.Enabled(), en.OutPath())
	}
	_, _, en = newSet(t)
	if en.Enabled() || en.WindowSec() != 0 || en.OutPath() != "" {
		t.Error("Energy group not zero-valued with no flags")
	}
}

func TestShardingAccessors(t *testing.T) {
	sh, _, _ := newSet(t, "-shards", "2", "-enclosures", "8", "-boards", "2", "-clients-per-board", "3")
	if !sh.Enabled() {
		t.Fatal("sharding not enabled")
	}
	topo := sh.Topology()
	if topo == nil || topo.Shards != 2 || topo.Enclosures != 8 || topo.BoardsPerEnclosure != 2 || topo.ClientsPerBoard != 3 {
		t.Errorf("topology %+v", topo)
	}
	sh, _, _ = newSet(t)
	if sh.Enabled() || sh.Topology() != nil {
		t.Error("flat model should have nil topology")
	}
}

// TestShardingBoardsList: a comma-list -boards yields a heterogeneous
// topology and sizes -enclosures from the list length — unless
// -enclosures was passed explicitly, which wins (and lets Normalize
// report the length mismatch).
func TestShardingBoardsList(t *testing.T) {
	sh, _, _ := newSet(t, "-shards", "2", "-boards", "8,2,2,2", "-placement", "balanced")
	topo := sh.Topology()
	if topo == nil || topo.Enclosures != 4 || len(topo.Boards) != 4 ||
		topo.Boards[0] != 8 || topo.Boards[3] != 2 || topo.BoardsPerEnclosure != 0 {
		t.Errorf("list topology %+v", topo)
	}
	if topo.Placement != "balanced" {
		t.Errorf("placement %q not threaded through", topo.Placement)
	}
	sh, _, _ = newSet(t, "-shards", "2", "-boards", "8,2", "-enclosures", "3")
	if topo := sh.Topology(); topo.Enclosures != 3 || len(topo.Boards) != 2 {
		t.Errorf("explicit -enclosures overridden: %+v", topo)
	}
	// Uniform single count: the pre-list behavior, untouched.
	sh, _, _ = newSet(t, "-shards", "2", "-boards", " 6 ")
	if topo := sh.Topology(); topo.BoardsPerEnclosure != 6 || topo.Boards != nil {
		t.Errorf("uniform topology %+v", topo)
	}
}
