package core

import (
	"math"
	"testing"

	"warehousesim/internal/platform"
)

func smallTargets() map[string]float64 {
	return map[string]float64{
		"websearch": 300,
		"ytube":     500,
		"mapred-wc": 0.05, // jobs/s
	}
}

func TestPlanDatacenterBasics(t *testing.T) {
	ev := NewEvaluator()
	spec := DefaultDatacenterSpec(BaselineDesign(platform.Srvr1()), smallTargets())
	plan, err := ev.PlanDatacenter(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pools) != 3 {
		t.Fatalf("pools = %d", len(plan.Pools))
	}
	total := 0
	for _, p := range plan.Pools {
		if p.Capacity <= 0 || p.Servers < p.Capacity || p.Spares != p.Servers-p.Capacity {
			t.Errorf("pool %s inconsistent: %+v", p.Workload, p)
		}
		total += p.Servers
	}
	if total != plan.TotalServers {
		t.Error("server total mismatch")
	}
	if plan.Racks != (plan.TotalServers+39)/40 {
		t.Errorf("racks = %d for %d servers", plan.Racks, plan.TotalServers)
	}
	if plan.TotalUSD() <= 0 || plan.EnergyKWhPerDay <= 0 {
		t.Error("degenerate dollars/energy")
	}
	sum := plan.ServerHardwareUSD + plan.FabricUSD + plan.PowerCoolingUSD + plan.RealEstateUSD
	if math.Abs(sum-plan.TotalUSD()) > 1e-9 {
		t.Error("TotalUSD does not sum its parts")
	}
}

func TestPlanDatacenterN2CheaperThanSrvr1(t *testing.T) {
	ev := NewEvaluator()
	base, err := ev.PlanDatacenter(DefaultDatacenterSpec(BaselineDesign(platform.Srvr1()), smallTargets()))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ev.PlanDatacenter(DefaultDatacenterSpec(NewN2(), smallTargets()))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's thesis at datacenter scale: the N2 fleet costs less in
	// total despite needing more servers.
	if n2.TotalServers <= base.TotalServers {
		t.Errorf("N2 fleet (%d) should need more servers than srvr1 (%d)",
			n2.TotalServers, base.TotalServers)
	}
	if n2.TotalUSD() >= base.TotalUSD() {
		t.Errorf("N2 datacenter ($%.0f) not cheaper than srvr1 ($%.0f)",
			n2.TotalUSD(), base.TotalUSD())
	}
	// Compaction: N2 should not need more racks.
	if n2.Racks > base.Racks {
		t.Errorf("N2 racks (%d) exceed srvr1 (%d)", n2.Racks, base.Racks)
	}
}

func TestPlanDatacenterValidation(t *testing.T) {
	ev := NewEvaluator()
	if _, err := ev.PlanDatacenter(DatacenterSpec{Design: NewN1()}); err == nil {
		t.Error("empty targets accepted")
	}
	spec := DefaultDatacenterSpec(NewN1(), smallTargets())
	spec.ServerMTBFHours = 0
	if _, err := ev.PlanDatacenter(spec); err == nil {
		t.Error("zero MTBF accepted")
	}
	spec = DefaultDatacenterSpec(NewN1(), map[string]float64{"websearch": 1e9})
	if _, err := ev.PlanDatacenter(spec); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestPlanDatacenterDeterministic(t *testing.T) {
	run := func() DatacenterPlan {
		ev := NewEvaluator()
		p, err := ev.PlanDatacenter(DefaultDatacenterSpec(NewN2(), smallTargets()))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	if a.TotalServers != b.TotalServers || a.TotalUSD() != b.TotalUSD() {
		t.Error("planning not deterministic")
	}
}
