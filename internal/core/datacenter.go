package core

import (
	"fmt"

	"warehousesim/internal/avail"
	"warehousesim/internal/diurnal"
	"warehousesim/internal/fabric"
	"warehousesim/internal/scaleout"
	"warehousesim/internal/workload"
)

// DatacenterSpec describes a whole green-field datacenter design problem
// (§1: the internet sector's "custom-designed servers in green-field
// datacenters built from scratch"): one server design serving several
// workload pools at target aggregate rates, with the cluster-level
// concerns the paper's per-server model abstracts away — scale-out
// overheads, availability sparing, the rack network fabric, diurnal
// energy, and floor space.
type DatacenterSpec struct {
	Design Design
	// TargetPerf maps workload name to the required aggregate rate
	// (RPS, or jobs/s for batch).
	TargetPerf map[string]float64
	// Scaling is the partitioning-overhead model.
	Scaling scaleout.USL
	// AvailabilityTarget (e.g. 0.9999) and the server failure behavior.
	AvailabilityTarget float64
	ServerMTBFHours    float64
	ServerMTTRHours    float64
	// FabricOversubscription of the rack network edge.
	FabricOversubscription float64
	// RealEstateUSDPerRackYear amortizes floor space.
	RealEstateUSDPerRackYear float64
	// Load is the diurnal curve; consolidation is applied off-peak.
	Load diurnal.Curve
}

// DefaultDatacenterSpec returns a spec with the extension models'
// defaults for the given design and targets.
func DefaultDatacenterSpec(d Design, targets map[string]float64) DatacenterSpec {
	return DatacenterSpec{
		Design:                   d,
		TargetPerf:               targets,
		Scaling:                  scaleout.TypicalScaleOut(),
		AvailabilityTarget:       0.9999,
		ServerMTBFHours:          2 * 8766,
		ServerMTTRHours:          8,
		FabricOversubscription:   4,
		RealEstateUSDPerRackYear: 2400,
		Load:                     diurnal.TypicalInternet(),
	}
}

// PoolPlan is one workload pool of the datacenter.
type PoolPlan struct {
	Workload string
	// Capacity servers deliver the target rate; Spares cover the
	// availability target; Servers is their sum.
	Capacity int
	Spares   int
	Servers  int
}

// DatacenterPlan is the solved deployment.
type DatacenterPlan struct {
	Spec  DatacenterSpec
	Pools []PoolPlan
	// TotalServers and Racks under the design's packaging density.
	TotalServers int
	Racks        int
	// Dollar components over the depreciation cycle.
	ServerHardwareUSD float64
	FabricUSD         float64
	PowerCoolingUSD   float64
	RealEstateUSD     float64
	// EnergyKWhPerDay with off-peak consolidation.
	EnergyKWhPerDay float64
}

// TotalUSD is the full lifecycle cost.
func (p DatacenterPlan) TotalUSD() float64 {
	return p.ServerHardwareUSD + p.FabricUSD + p.PowerCoolingUSD + p.RealEstateUSD
}

// PlanDatacenter solves the spec: sizes each pool (scale-out aware),
// adds availability spares, packs racks at the design's density, designs
// the rack fabric, and prices energy with diurnal consolidation.
func (ev *Evaluator) PlanDatacenter(spec DatacenterSpec) (DatacenterPlan, error) {
	if len(spec.TargetPerf) == 0 {
		return DatacenterPlan{}, fmt.Errorf("core: datacenter spec has no workload targets")
	}
	resolved, err := spec.Design.Resolve()
	if err != nil {
		return DatacenterPlan{}, err
	}
	serverAvail, err := avail.ServerAvailability(spec.ServerMTBFHours, spec.ServerMTTRHours)
	if err != nil {
		return DatacenterPlan{}, err
	}

	plan := DatacenterPlan{Spec: spec}
	for _, p := range workload.SuiteProfiles() {
		target, ok := spec.TargetPerf[p.Name]
		if !ok {
			continue
		}
		ms, err := ev.Evaluate(spec.Design, []workload.Profile{p})
		if err != nil {
			return DatacenterPlan{}, err
		}
		capacity, err := scaleout.ServersFor(target, ms[0].Perf, spec.Scaling)
		if err != nil {
			return DatacenterPlan{}, fmt.Errorf("core: %s pool: %w", p.Name, err)
		}
		total, err := avail.ServersForTarget(capacity, serverAvail, spec.AvailabilityTarget)
		if err != nil {
			return DatacenterPlan{}, fmt.Errorf("core: %s sparing: %w", p.Name, err)
		}
		plan.Pools = append(plan.Pools, PoolPlan{
			Workload: p.Name,
			Capacity: capacity,
			Spares:   total - capacity,
			Servers:  total,
		})
		plan.TotalServers += total
	}

	density := resolved.Rack.ServersPerRack
	plan.Racks = (plan.TotalServers + density - 1) / density

	// Server hardware (the resolved BoM; switch share handled by the
	// fabric below, so use the bare server price).
	plan.ServerHardwareUSD = float64(plan.TotalServers) * resolved.Server.HardwarePriceUSD()

	// Network fabric, designed for the actual fleet at the paper's
	// 1 GbE switching class (Figure 1a prices the same $2,750 rack
	// switch for all platforms regardless of NIC speed).
	fcfg := fabric.DefaultConfig(plan.TotalServers)
	fcfg.Oversubscription = spec.FabricOversubscription
	fplan, err := fabric.Design(fcfg)
	if err != nil {
		return DatacenterPlan{}, fmt.Errorf("core: fabric: %w", err)
	}
	plan.FabricUSD = fplan.CostUSD

	// Energy: per-server consumed power with consolidation off-peak,
	// using the BoM-derived idle model (CPU collapses at idle).
	consumed := ev.Cost.Power.ServerConsumed(resolved.Server, resolved.Rack)
	peakW := consumed.TotalW()
	sp := diurnal.ServerPower{IdleW: peakW - 0.8*consumed.CPUW, PeakW: peakW}
	energy, err := diurnal.EnergyKWhPerDay(plan.TotalServers, sp, spec.Load, diurnal.Consolidate, 0.75)
	if err != nil {
		return DatacenterPlan{}, err
	}
	plan.EnergyKWhPerDay = energy
	// Burden the mean consumed power through the Patel–Shah model.
	meanW := energy * 1e3 / 24 // average watts across the fleet
	plan.PowerCoolingUSD = ev.Cost.PC.BurdenedUSD(meanW) +
		ev.Cost.PC.BurdenedUSD(fplan.PowerW)

	plan.RealEstateUSD = spec.RealEstateUSDPerRackYear * ev.Cost.PC.Years * float64(plan.Racks)
	return plan, nil
}
