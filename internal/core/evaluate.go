package core

import (
	"fmt"

	"warehousesim/internal/cluster"
	"warehousesim/internal/cooling"
	"warehousesim/internal/cost"
	"warehousesim/internal/flashcache"
	"warehousesim/internal/metrics"
	"warehousesim/internal/platform"
	"warehousesim/internal/power"
	"warehousesim/internal/stats"
	"warehousesim/internal/workload"
)

// Evaluator runs (design, workload) evaluations and produces the
// measurement tables behind Figure 2(c), Table 3(b) and Figure 5.
type Evaluator struct {
	// Cost is the TCO model (defaults from the paper).
	Cost cost.Model
	// FlashReplayRequests sizes the flash-cache trace replay used to
	// derive per-workload hit rates.
	FlashReplayRequests int
	// Seed drives trace replays.
	Seed uint64
	// EnclosureCoolingCredit, when set, scales the burdened-cooling
	// factors (L1, K2) by the enclosure's room-cooling factor — the
	// second-order CRAC credit the paper's fixed K1/L1/K2 ignore
	// (cooling.Enclosure.RoomCoolingFactor). Off by default so headline
	// numbers stay on the paper's model.
	EnclosureCoolingCredit bool

	// hitRates caches flash hit rates per (storage kind, workload).
	hitRates map[string]float64
}

// NewEvaluator returns an evaluator with the paper's default models.
func NewEvaluator() *Evaluator {
	return &Evaluator{
		Cost:                cost.DefaultModel(),
		FlashReplayRequests: 4000,
		Seed:                1,
	}
}

// flashHitRate replays the workload's disk trace through the 1 GB flash
// cache and returns the steady-state read hit rate.
func (ev *Evaluator) flashHitRate(p workload.Profile) (float64, error) {
	if ev.hitRates == nil {
		ev.hitRates = map[string]float64{}
	}
	if hr, ok := ev.hitRates[p.Name]; ok {
		return hr, nil
	}
	ws, ok := flashcache.DiskWorkingSets()[p.Name]
	if !ok {
		return 0, fmt.Errorf("core: no disk working set for workload %q", p.Name)
	}
	sim, err := flashcache.New(flashcache.DefaultConfig())
	if err != nil {
		return 0, err
	}
	r := stats.NewRNG(ev.Seed ^ 0xf1a5)
	// Warm the cache, then measure.
	flashcache.Replay(sim, &ws, r, ev.FlashReplayRequests/2)
	warm := sim.Stats()
	flashcache.Replay(sim, &ws, r, ev.FlashReplayRequests)
	st := sim.Stats()
	reads := st.Reads - warm.Reads
	hits := st.ReadHits - warm.ReadHits
	hr := 0.0
	if reads > 0 {
		hr = float64(hits) / float64(reads)
	}
	ev.hitRates[p.Name] = hr
	return hr, nil
}

// clusterConfig lowers a resolved design into the per-workload queueing
// configuration.
func (ev *Evaluator) clusterConfig(r Resolved, p workload.Profile) (cluster.Config, error) {
	cfg := cluster.Config{Server: r.Server}
	switch r.Design.Storage {
	case FlashSSDStorage:
		cfg.Storage = cluster.FlashOnlyDisk{Flash: platform.FlashSSD()}
	case RemoteLaptopStorage:
		cfg.Storage = cluster.RemoteDisk{Disk: r.Server.Disk}
	case RemoteLaptopFlashStorage, RemoteLaptop2FlashStorage:
		hr, err := ev.flashHitRate(p)
		if err != nil {
			return cluster.Config{}, err
		}
		if r.Server.Flash == nil {
			return cluster.Config{}, fmt.Errorf("core: %s lacks a flash device", r.Design.Name)
		}
		cfg.Storage = cluster.FlashCachedDisk{
			Flash:             *r.Server.Flash,
			Backing:           cluster.RemoteDisk{Disk: r.Server.Disk},
			HitRate:           hr,
			DestageForeground: 0.1,
		}
	}
	if r.Design.Memory != nil {
		cfg.MemSlowdown = r.Design.Memory.AssumedSlowdown
	}
	return cfg, nil
}

// ClusterConfig lowers a design onto the per-workload queueing
// configuration (resolved server, storage subsystem, memory slowdown) —
// the same lowering Evaluate uses, exposed for callers that drive the
// discrete-event simulation directly (cmd/whsim).
func (ev *Evaluator) ClusterConfig(d Design, p workload.Profile) (cluster.Config, error) {
	resolved, err := d.Resolve()
	if err != nil {
		return cluster.Config{}, err
	}
	return ev.clusterConfig(resolved, p)
}

// PowerBreakdown resolves a design and returns its per-component
// consumed-power split under the evaluator's cost model — the active
// (activity-factored) draw the time-resolved energy plane scales by
// observed utilization (obs/energy.Model.Active).
func (ev *Evaluator) PowerBreakdown(d Design) (power.Breakdown, error) {
	resolved, err := d.Resolve()
	if err != nil {
		return power.Breakdown{}, err
	}
	return ev.Cost.Power.ServerConsumed(resolved.Server, resolved.Rack), nil
}

// Evaluate measures one design on the given workload profiles and
// returns one metrics.Measurement per profile.
func (ev *Evaluator) Evaluate(d Design, profiles []workload.Profile) ([]metrics.Measurement, error) {
	resolved, err := d.Resolve()
	if err != nil {
		return nil, err
	}
	costModel := ev.Cost
	if ev.EnclosureCoolingCredit {
		f := cooling.EnclosureFor(d.Enclosure).RoomCoolingFactor()
		costModel.PC.L1 *= f
		costModel.PC.K2 *= f
	}
	inf, pc, tco := resolved.ServerTCO(costModel)
	consumed := costModel.Power.ServerConsumed(resolved.Server, resolved.Rack).TotalW()

	out := make([]metrics.Measurement, 0, len(profiles))
	for _, p := range profiles {
		cfg, err := ev.clusterConfig(resolved, p)
		if err != nil {
			return nil, err
		}
		res, err := cfg.Analyze(p)
		if err != nil {
			return nil, err
		}
		unit := "RPS"
		if p.Batch {
			unit = "1/s"
		}
		out = append(out, metrics.Measurement{
			Workload: p.Name,
			System:   d.Name,
			Perf:     res.Perf,
			Unit:     unit,
			QoSMet:   res.QoSMet,
			PowerW:   consumed,
			InfUSD:   inf,
			PCUSD:    pc,
			TCOUSD:   tco,
		})
	}
	return out, nil
}

// EvaluateSuite measures several designs across the full benchmark
// suite and returns the combined table.
func (ev *Evaluator) EvaluateSuite(designs []Design) (*metrics.Table, error) {
	t := &metrics.Table{}
	profiles := workload.SuiteProfiles()
	for _, d := range designs {
		ms, err := ev.Evaluate(d, profiles)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s: %w", d.Name, err)
		}
		for _, m := range ms {
			t.Add(m)
		}
	}
	return t, nil
}

// RackFor reports the rack density of a design for the compaction
// discussion of §3.3/§3.6.
func RackFor(d Design) (platform.Rack, error) {
	r, err := d.Resolve()
	if err != nil {
		return platform.Rack{}, err
	}
	return r.Rack, nil
}
