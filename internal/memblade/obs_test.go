package memblade

import (
	"testing"

	"warehousesim/internal/obs"
)

func TestInstrumentedAccessStreams(t *testing.T) {
	s, err := New(Config{FootprintPages: 1000, LocalFraction: 0.1, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	s.Instrument(sink, 10)

	// Sweep the footprint twice: a cold pass (all misses past capacity)
	// then a second pass.
	for pass := 0; pass < 2; pass++ {
		for p := int64(0); p < 1000; p++ {
			s.Access(p, p%7 == 0)
		}
	}
	st := s.Stats()
	if got := sink.CounterValue("memblade.accesses"); got != st.Accesses {
		t.Fatalf("accesses counter %d != stats %d", got, st.Accesses)
	}
	if got := sink.CounterValue("memblade.misses"); got != st.Misses {
		t.Fatalf("misses counter %d != stats %d", got, st.Misses)
	}
	if got := sink.CounterValue("memblade.writebacks"); got != st.Writebacks {
		t.Fatalf("writebacks counter %d != stats %d", got, st.Writebacks)
	}
	if n := sink.EventCount("memblade.swap"); int64(n) != st.Misses {
		t.Fatalf("swap events %d != misses %d", n, st.Misses)
	}
	hr := sink.SeriesByName("memblade.hit_rate")
	if hr == nil || len(hr.Points) != 200 {
		t.Fatalf("hit-rate series: %+v, want 200 samples (2000 accesses / 10)", hr)
	}
	last := hr.Points[len(hr.Points)-1]
	if want := 1 - st.MissRate(); last.V != want {
		t.Fatalf("final running hit rate %g != 1-missrate %g", last.V, want)
	}
}

func TestInstrumentDetach(t *testing.T) {
	s, err := New(Config{FootprintPages: 100, LocalFraction: 0.5, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	s.Instrument(sink, 1)
	s.Access(1, false)
	s.Instrument(nil, 0)
	s.Access(2, false)
	if got := sink.CounterValue("memblade.accesses"); got != 1 {
		t.Fatalf("detached sim kept recording: accesses = %d, want 1", got)
	}
	s.Instrument(obs.Nop{}, 1) // disabled recorder also detaches
	s.Access(3, false)
	if got := sink.CounterValue("memblade.accesses"); got != 1 {
		t.Fatalf("Nop recorder attach recorded: accesses = %d, want 1", got)
	}
}
