package memblade

import "fmt"

// Interconnect models the server-to-memory-blade link: the time the
// faulting access stalls while the remote page (or its critical block)
// arrives. Victim writeback is decoupled from the critical path (§3.4),
// so only the inbound transfer stalls execution.
type Interconnect struct {
	Name string
	// StallPerMissSec is the execution stall per remote-page fault.
	StallPerMissSec float64
}

// PCIeX4 is the baseline PCIe 2.0 x4 link: ~4 µs to move a 4 KB page
// (published round-trip plus DRAM and bus-transfer latencies).
func PCIeX4() Interconnect {
	return Interconnect{Name: "pcie-x4", StallPerMissSec: 4e-6}
}

// CBF is the critical-block-first optimization: the faulting access
// completes as soon as the needed cache block arrives (~0.75 µs); the
// rest of the page streams in behind it.
func CBF() Interconnect {
	return Interconnect{Name: "cbf", StallPerMissSec: 0.75e-6}
}

// Slowdown converts replay statistics into the fractional execution
// slowdown of Figure 4(b):
//
//	slowdown = missesPerRequest * accessScale * stall / requestServiceSec
//
// accessScale bridges trace granularity to full memory-reference
// density: the engines trace page touches at data-structure granularity,
// while the paper's COTSon traces contain every load/store; the scale is
// calibrated once per workload on the published PCIe/25% cell and then
// *predicts* the other cells (12.5% split, CBF, LRU). See DESIGN.md §2.
func Slowdown(st Stats, ic Interconnect, requestServiceSec, accessScale float64) (float64, error) {
	if requestServiceSec <= 0 {
		return 0, fmt.Errorf("memblade: request service time must be positive")
	}
	if accessScale <= 0 {
		return 0, fmt.Errorf("memblade: access scale must be positive")
	}
	return st.MissesPerRequest() * accessScale * ic.StallPerMissSec / requestServiceSec, nil
}
