package memblade

import (
	"fmt"

	"warehousesim/internal/platform"
)

// Scheme is one of the Figure 4(c) provisioning cost scenarios: how
// much DRAM stays server-local, how much moves to the memory blade, and
// the blade-side device economics.
type Scheme struct {
	Name string
	// LocalFraction of the baseline DRAM stays on the server.
	LocalFraction float64
	// RemoteFraction of the baseline DRAM sits on the memory blade.
	// Local+Remote is 1.0 for static partitioning and 0.85 for dynamic
	// provisioning (20% of blades use only local memory).
	RemoteFraction float64
	// RemoteDiscount: blade devices are slower but cheaper ("24%
	// cheaper", §3.4).
	RemoteDiscount float64
	// RemotePowerFactor: blade DRAM stays in active power-down mode,
	// cutting DRAM power by more than 90% (factor 0.1).
	RemotePowerFactor float64
	// PCIeCostUSD and PCIePowerW are the per-server (x4 lane) share of
	// the blade controller ($10, 1.45 W).
	PCIeCostUSD float64
	PCIePowerW  float64
	// AssumedSlowdown is the performance cost applied uniformly (the
	// paper assumes 2% across benchmarks for the cost analysis).
	AssumedSlowdown float64
	// RemotePhysicalFactor is the physical DRAM bought per logical byte
	// on the blade (1.0 normally; below 1 with content-based page
	// sharing or compression — the §3.4 extensions). It scales blade
	// price and power but not logical capacity.
	RemotePhysicalFactor float64
}

// StaticScheme keeps the baseline's total DRAM: 25% local, 75% remote.
func StaticScheme() Scheme {
	return Scheme{
		Name:                 "static",
		LocalFraction:        0.25,
		RemoteFraction:       0.75,
		RemoteDiscount:       0.24,
		RemotePowerFactor:    0.10,
		PCIeCostUSD:          10,
		PCIePowerW:           1.45,
		AssumedSlowdown:      0.02,
		RemotePhysicalFactor: 1.0,
	}
}

// DynamicScheme right-provisions to 85% of the baseline DRAM: 25%
// local, 60% remote (20% of blades use only their local memory).
func DynamicScheme() Scheme {
	s := StaticScheme()
	s.Name = "dynamic"
	s.RemoteFraction = 0.60
	return s
}

// Validate reports nonsensical schemes.
func (sc Scheme) Validate() error {
	switch {
	case sc.LocalFraction <= 0 || sc.LocalFraction > 1:
		return fmt.Errorf("memblade: local fraction %g outside (0,1]", sc.LocalFraction)
	case sc.RemoteFraction < 0:
		return fmt.Errorf("memblade: negative remote fraction")
	case sc.RemoteDiscount < 0 || sc.RemoteDiscount >= 1:
		return fmt.Errorf("memblade: discount %g outside [0,1)", sc.RemoteDiscount)
	case sc.RemotePowerFactor < 0 || sc.RemotePowerFactor > 1:
		return fmt.Errorf("memblade: power factor %g outside [0,1]", sc.RemotePowerFactor)
	case sc.AssumedSlowdown < 0 || sc.AssumedSlowdown >= 1:
		return fmt.Errorf("memblade: slowdown %g outside [0,1)", sc.AssumedSlowdown)
	case sc.RemotePhysicalFactor <= 0 || sc.RemotePhysicalFactor > 1:
		return fmt.Errorf("memblade: physical factor %g outside (0,1]", sc.RemotePhysicalFactor)
	}
	return nil
}

// Apply returns the server with its memory subsystem re-provisioned
// under the scheme: the local DIMMs shrink to LocalFraction, the blade
// share is amortized back per server at the discounted price and
// powered-down rate, and the PCIe controller share is added.
func (sc Scheme) Apply(s platform.Server) (platform.Server, error) {
	if err := sc.Validate(); err != nil {
		return platform.Server{}, err
	}
	basePrice := s.Memory.PriceUSD
	basePower := s.Memory.PowerW
	baseCap := s.Memory.CapacityGB

	physical := sc.RemoteFraction * sc.RemotePhysicalFactor
	s.Memory.PriceUSD = basePrice*sc.LocalFraction +
		basePrice*physical*(1-sc.RemoteDiscount) +
		sc.PCIeCostUSD
	s.Memory.PowerW = basePower*sc.LocalFraction +
		basePower*physical*sc.RemotePowerFactor +
		sc.PCIePowerW
	s.Memory.CapacityGB = baseCap * (sc.LocalFraction + sc.RemoteFraction)
	return s, nil
}
