package memblade

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/platform"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{FootprintPages: 100, LocalFraction: 0.25}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if (Config{FootprintPages: 0, LocalFraction: 0.25}).Validate() == nil {
		t.Error("zero footprint accepted")
	}
	if (Config{FootprintPages: 10, LocalFraction: 0}).Validate() == nil {
		t.Error("zero local fraction accepted")
	}
	if (Config{FootprintPages: 10, LocalFraction: 1.5}).Validate() == nil {
		t.Error("local fraction > 1 accepted")
	}
}

func TestCapacity(t *testing.T) {
	s, err := New(Config{FootprintPages: 1000, LocalFraction: 0.25, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 250 {
		t.Errorf("capacity = %d, want 250", s.Capacity())
	}
}

func TestLRUBehaviour(t *testing.T) {
	s, err := New(Config{FootprintPages: 8, LocalFraction: 0.25, Policy: LRU}) // capacity 2
	if err != nil {
		t.Fatal(err)
	}
	if s.Access(1, false) {
		t.Error("cold access hit")
	}
	s.Access(2, false)
	if !s.Access(1, false) {
		t.Error("resident page missed")
	}
	// Access order now 1,2 (1 most recent). Inserting 3 evicts 2.
	s.Access(3, false)
	if s.Access(2, false) {
		t.Error("LRU kept the least-recently-used page")
	}
	if !s.Access(1, false) {
		// After the miss on 2, order is 2,3,... capacity 2 -> 1 was
		// evicted by the miss on 2. Rebuild expectations:
		// state after Access(3): {1,3}; Access(2) evicts 1 -> {2,3}.
		t.Log("1 correctly evicted after reaccessing 2")
	}
}

func TestLRUFullWorkingSetNeverMisses(t *testing.T) {
	s, err := New(Config{FootprintPages: 100, LocalFraction: 1.0, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for p := int64(0); p < 100; p++ {
			s.Access(p, false)
		}
	}
	if got := s.Stats().Misses; got != 100 {
		t.Errorf("misses = %d, want 100 (cold only)", got)
	}
}

func TestPoliciesMissRateOrdering(t *testing.T) {
	// On a Zipf trace, LRU should not lose badly to Random; Clock lands
	// between them (the paper's expectation for implementable policies).
	sp, err := trace.NewSyntheticPages(20000, 0.9, 20, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(2)
	tr := trace.CollectPages(sp, r, 3000)

	rates := map[Policy]float64{}
	for _, pol := range []Policy{LRU, Random, Clock} {
		s, err := New(Config{FootprintPages: 20000, LocalFraction: 0.25, Policy: pol, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		st := Replay(s, tr)
		rates[pol] = st.MissRate()
		if st.Accesses == 0 || st.MissRate() <= 0 || st.MissRate() >= 1 {
			t.Fatalf("%v: degenerate miss rate %g", pol, st.MissRate())
		}
	}
	if rates[LRU] > rates[Random]*1.1 {
		t.Errorf("LRU (%.3f) much worse than Random (%.3f)", rates[LRU], rates[Random])
	}
	if rates[Clock] > rates[Random]*1.15 {
		t.Errorf("Clock (%.3f) much worse than Random (%.3f)", rates[Clock], rates[Random])
	}
}

func TestSmallerLocalMemoryMissesMore(t *testing.T) {
	sp, err := trace.NewSyntheticPages(10000, 0.85, 15, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(5)
	tr := trace.CollectPages(sp, r, 2000)

	miss := func(frac float64) float64 {
		s, err := New(Config{FootprintPages: 10000, LocalFraction: frac, Policy: Random, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return Replay(s, tr).MissRate()
	}
	m25, m125 := miss(0.25), miss(0.125)
	if m125 <= m25 {
		t.Errorf("12.5%% local (%.3f) should miss more than 25%% (%.3f)", m125, m25)
	}
}

func TestWritebackAccounting(t *testing.T) {
	s, err := New(Config{FootprintPages: 8, LocalFraction: 0.25, Policy: LRU}) // capacity 2
	if err != nil {
		t.Fatal(err)
	}
	s.Access(1, true)  // dirty
	s.Access(2, false) // clean
	s.Access(3, false) // evicts 1 (dirty) -> writeback
	s.Access(4, false) // evicts 2 (clean)
	st := s.Stats()
	if st.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestStatsDerivedValues(t *testing.T) {
	st := Stats{Accesses: 200, Misses: 20, Requests: 10}
	if st.MissRate() != 0.1 {
		t.Errorf("miss rate = %g", st.MissRate())
	}
	if st.MissesPerRequest() != 2 {
		t.Errorf("misses/request = %g", st.MissesPerRequest())
	}
	if (Stats{}).MissRate() != 0 || (Stats{}).MissesPerRequest() != 0 {
		t.Error("empty stats not zero")
	}
}

func TestInterconnectLatencies(t *testing.T) {
	if PCIeX4().StallPerMissSec != 4e-6 {
		t.Errorf("PCIe stall = %g", PCIeX4().StallPerMissSec)
	}
	if CBF().StallPerMissSec != 0.75e-6 {
		t.Errorf("CBF stall = %g", CBF().StallPerMissSec)
	}
}

func TestSlowdownFormula(t *testing.T) {
	st := Stats{Accesses: 1000, Misses: 100, Requests: 100} // 1 miss/request
	sd, err := Slowdown(st, PCIeX4(), 0.001, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 1 * 10 * 4e-6 / 1e-3 = 0.04.
	if math.Abs(sd-0.04) > 1e-12 {
		t.Errorf("slowdown = %g, want 0.04", sd)
	}
	// CBF slashes it by the latency ratio.
	sdCBF, err := Slowdown(st, CBF(), 0.001, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sdCBF/sd-0.75/4) > 1e-9 {
		t.Errorf("CBF ratio = %g, want %g", sdCBF/sd, 0.75/4)
	}
	if _, err := Slowdown(st, PCIeX4(), 0, 1); err == nil {
		t.Error("zero service time accepted")
	}
	if _, err := Slowdown(st, PCIeX4(), 1, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestSchemesMatchPaperParameters(t *testing.T) {
	st := StaticScheme()
	if st.LocalFraction != 0.25 || st.RemoteFraction != 0.75 ||
		st.RemoteDiscount != 0.24 || st.PCIeCostUSD != 10 || st.PCIePowerW != 1.45 ||
		st.AssumedSlowdown != 0.02 {
		t.Errorf("static scheme drifted from §3.4: %+v", st)
	}
	dy := DynamicScheme()
	if dy.RemoteFraction != 0.60 || dy.LocalFraction != 0.25 {
		t.Errorf("dynamic scheme drifted from §3.4: %+v", dy)
	}
	if err := st.Validate(); err != nil {
		t.Error(err)
	}
	if err := dy.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSchemeApply(t *testing.T) {
	base := platform.Emb1()
	mod, err := StaticScheme().Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	// Memory price: 0.25*170 + 0.75*170*0.76 + 10 = 42.5 + 96.9 + 10.
	want := 0.25*170 + 0.75*170*0.76 + 10
	if math.Abs(mod.Memory.PriceUSD-want) > 1e-9 {
		t.Errorf("static memory price = %g, want %g", mod.Memory.PriceUSD, want)
	}
	// Memory power: 0.25*10 + 0.75*10*0.1 + 1.45 = 2.5+0.75+1.45 = 4.7.
	if math.Abs(mod.Memory.PowerW-4.7) > 1e-9 {
		t.Errorf("static memory power = %g, want 4.7", mod.Memory.PowerW)
	}
	if mod.Memory.CapacityGB != base.Memory.CapacityGB {
		t.Errorf("static scheme changed capacity: %g", mod.Memory.CapacityGB)
	}

	dyn, err := DynamicScheme().Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dyn.Memory.CapacityGB-0.85*base.Memory.CapacityGB) > 1e-9 {
		t.Errorf("dynamic capacity = %g, want 85%%", dyn.Memory.CapacityGB)
	}
	if dyn.Memory.PriceUSD >= mod.Memory.PriceUSD {
		t.Error("dynamic should be cheaper than static")
	}

	bad := StaticScheme()
	bad.RemoteDiscount = 1.0
	if _, err := bad.Apply(base); err == nil {
		t.Error("invalid scheme accepted")
	}
}

// Property: for any trace, misses never exceed accesses and resident set
// never exceeds capacity (checked indirectly via full-residency replay).
func TestQuickSimInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		footprint := int64(50 + r.Intn(500))
		frac := 0.1 + 0.8*r.Float64()
		pol := Policy(r.Intn(3))
		s, err := New(Config{FootprintPages: footprint, LocalFraction: frac, Policy: pol, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			s.Access(r.Int63n(footprint), r.Bool(0.3))
		}
		st := s.Stats()
		if st.Misses > st.Accesses || st.Writebacks > st.Misses {
			return false
		}
		resident := 0
		switch pol {
		case LRU:
			resident = s.order.Len()
		default:
			resident = len(s.slots)
		}
		return resident <= s.capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
