package memblade

import (
	"math"
	"testing"
	"testing/quick"

	"warehousesim/internal/platform"
)

func TestBladeModelValidate(t *testing.T) {
	if err := DefaultBladeModel().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if (BladeModel{ServersPerBlade: 0, PageServiceSec: 1e-6}).Validate() == nil {
		t.Error("zero servers accepted")
	}
	if (BladeModel{ServersPerBlade: 8, PageServiceSec: 0}).Validate() == nil {
		t.Error("zero service accepted")
	}
}

func TestBladeUtilizationAndInflation(t *testing.T) {
	b := DefaultBladeModel() // 8 servers, 2µs/page
	// 10k faults/s/server * 8 * 2µs = 0.16 utilization.
	if got := b.Utilization(10000); math.Abs(got-0.16) > 1e-12 {
		t.Errorf("utilization = %g", got)
	}
	infl := b.StallInflation(10000)
	if math.Abs(infl-1/(1-0.16)) > 1e-12 {
		t.Errorf("inflation = %g", infl)
	}
	if !math.IsInf(b.StallInflation(1e9), 1) {
		t.Error("saturated blade should report infinite inflation")
	}
}

func TestBladeHeadroom(t *testing.T) {
	b := DefaultBladeModel()
	max := b.MaxMissRatePerServer(0.8)
	if got := b.Utilization(max); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("headroom inversion failed: util %g", got)
	}
	if b.MaxMissRatePerServer(0) != 0 || b.MaxMissRatePerServer(1.5) != 0 {
		t.Error("invalid target utilization should return 0")
	}
}

func TestContentSharing(t *testing.T) {
	cs := DefaultContentSharing()
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	st, err := cs.Apply(1000000)
	if err != nil {
		t.Fatal(err)
	}
	f := st.SharingFactor()
	// 45% duplicates folding to 35% of their count:
	// distinct = 0.55 + 0.45*0.35 = 0.7075.
	if math.Abs(f-0.7075) > 0.001 {
		t.Errorf("sharing factor = %g, want ~0.7075", f)
	}
	if st.DistinctPages >= st.TotalPages {
		t.Error("no sharing achieved")
	}
}

func TestContentSharingValidation(t *testing.T) {
	if (ContentSharing{DuplicateFraction: 1.5, ClassesPerDuplicate: 0.5}).Validate() == nil {
		t.Error("fraction > 1 accepted")
	}
	if (ContentSharing{DuplicateFraction: 0.5, ClassesPerDuplicate: 0}).Validate() == nil {
		t.Error("zero classes accepted")
	}
}

func TestShareStatsNoSharingIsOne(t *testing.T) {
	if f := (ShareStats{}).SharingFactor(); f != 1 {
		t.Errorf("empty stats factor = %g", f)
	}
	none := ContentSharing{DuplicateFraction: 0, ClassesPerDuplicate: 1}
	st, err := none.Apply(100)
	if err != nil {
		t.Fatal(err)
	}
	if st.SharingFactor() != 1 {
		t.Errorf("no duplicates should mean factor 1, got %g", st.SharingFactor())
	}
}

func TestCompressionValidate(t *testing.T) {
	if err := DefaultCompression().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Compression{Ratio: 0.5}).Validate() == nil {
		t.Error("ratio < 1 accepted")
	}
	if (Compression{Ratio: 2, DecompressSecPerPage: -1}).Validate() == nil {
		t.Error("negative latency accepted")
	}
}

func TestEffectiveSchemeCombines(t *testing.T) {
	base := DynamicScheme()
	sharing := DefaultContentSharing()
	comp := DefaultCompression()
	sc, ic, err := EffectiveScheme(base, &sharing, &comp)
	if err != nil {
		t.Fatal(err)
	}
	// Physical factor: 0.7075 / 2.0 = 0.354.
	want := 0.7075 / 2.0
	if math.Abs(sc.RemotePhysicalFactor-want) > 0.001 {
		t.Errorf("physical factor = %g, want %g", sc.RemotePhysicalFactor, want)
	}
	if ic.StallPerMissSec <= PCIeX4().StallPerMissSec {
		t.Error("compression should add decompression latency")
	}
	// Logical capacity must be preserved through Apply.
	srv, err := sc.Apply(platform.Emb1())
	if err != nil {
		t.Fatal(err)
	}
	baseSrv, err := base.Apply(platform.Emb1())
	if err != nil {
		t.Fatal(err)
	}
	if srv.Memory.CapacityGB != baseSrv.Memory.CapacityGB {
		t.Errorf("extensions changed logical capacity: %g vs %g",
			srv.Memory.CapacityGB, baseSrv.Memory.CapacityGB)
	}
	if srv.Memory.PriceUSD >= baseSrv.Memory.PriceUSD {
		t.Errorf("extensions did not cut memory cost: %g vs %g",
			srv.Memory.PriceUSD, baseSrv.Memory.PriceUSD)
	}
	if srv.Memory.PowerW >= baseSrv.Memory.PowerW {
		t.Error("extensions did not cut memory power")
	}
}

func TestEffectiveSchemeNilExtensions(t *testing.T) {
	base := StaticScheme()
	sc, ic, err := EffectiveScheme(base, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.RemotePhysicalFactor != base.RemotePhysicalFactor {
		t.Error("nil extensions changed the scheme")
	}
	if ic != PCIeX4() {
		t.Error("nil extensions changed the interconnect")
	}
}

func TestEffectiveSchemeRejectsInvalid(t *testing.T) {
	bad := StaticScheme()
	bad.LocalFraction = 0
	if _, _, err := EffectiveScheme(bad, nil, nil); err == nil {
		t.Error("invalid base accepted")
	}
	sharing := ContentSharing{DuplicateFraction: 2, ClassesPerDuplicate: 0.5}
	if _, _, err := EffectiveScheme(StaticScheme(), &sharing, nil); err == nil {
		t.Error("invalid sharing accepted")
	}
	comp := Compression{Ratio: 0.1}
	if _, _, err := EffectiveScheme(StaticScheme(), nil, &comp); err == nil {
		t.Error("invalid compression accepted")
	}
}

// Property: blade inflation is monotone in fault rate below saturation.
func TestQuickBladeInflationMonotone(t *testing.T) {
	b := DefaultBladeModel()
	limit := b.MaxMissRatePerServer(0.99)
	f := func(aRaw, bRaw float64) bool {
		x := math.Mod(math.Abs(aRaw), limit)
		y := x + math.Mod(math.Abs(bRaw), limit-x+1)
		if y >= limit {
			y = limit * 0.999
		}
		if y < x {
			x, y = y, x
		}
		return b.StallInflation(y) >= b.StallInflation(x)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
