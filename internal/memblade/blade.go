package memblade

import (
	"fmt"
	"math"
)

// BladeModel captures the shared memory blade itself (§3.4's "multiple
// servers are connected to a memory blade"): one blade controller and
// PCIe fabric serve many compute blades, so per-server fault traffic
// contends on the blade. The paper's trace methodology ignores this
// second-order effect ("our trace-based methodology cannot account for
// the second-order impact of PCIe link contention"); this model bounds
// it with an M/M/1 approximation, as an extension ablation.
type BladeModel struct {
	// ServersPerBlade is the number of compute blades sharing one
	// memory blade.
	ServersPerBlade int
	// PageServiceSec is the blade-side occupancy per page transfer
	// (DRAM wake from active power-down + page read + link serialization).
	PageServiceSec float64
}

// DefaultBladeModel matches the paper's enclosure scale: one memory
// blade per enclosure serving 8 compute blades, ~2 µs of blade occupancy
// per 4 KB page (6-cycle DDR2 power-up exit plus the page transfer).
func DefaultBladeModel() BladeModel {
	return BladeModel{ServersPerBlade: 8, PageServiceSec: 2e-6}
}

// Validate reports nonsensical models.
func (b BladeModel) Validate() error {
	if b.ServersPerBlade <= 0 {
		return fmt.Errorf("memblade: blade needs servers > 0")
	}
	if b.PageServiceSec <= 0 {
		return fmt.Errorf("memblade: blade needs positive page service time")
	}
	return nil
}

// Utilization returns the blade utilization when each of the servers
// faults at missesPerSec.
func (b BladeModel) Utilization(missesPerSec float64) float64 {
	return missesPerSec * float64(b.ServersPerBlade) * b.PageServiceSec
}

// StallInflation returns the multiplier on the per-miss stall caused by
// queueing at the shared blade (M/M/1 residence over service:
// 1/(1-rho)). It returns +Inf when the blade saturates.
func (b BladeModel) StallInflation(missesPerSec float64) float64 {
	rho := b.Utilization(missesPerSec)
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - rho)
}

// MaxMissRatePerServer returns the per-server fault rate at which the
// blade reaches the given utilization — the provisioning headroom a
// blade design must respect.
func (b BladeModel) MaxMissRatePerServer(targetUtil float64) float64 {
	if targetUtil <= 0 || targetUtil >= 1 {
		return 0
	}
	return targetUtil / (float64(b.ServersPerBlade) * b.PageServiceSec)
}

// --- content-based page sharing and compression (§3.4 extensions) -----

// ShareStats summarizes a content-sharing scan of blade-resident pages.
type ShareStats struct {
	TotalPages    int64
	DistinctPages int64
}

// SharingFactor returns physical pages per logical page (<= 1 means
// savings; 1 means no sharing).
func (s ShareStats) SharingFactor() float64 {
	if s.TotalPages == 0 {
		return 1
	}
	return float64(s.DistinctPages) / float64(s.TotalPages)
}

// ContentSharing models Waldspurger-style content-based page sharing
// across the blades behind one memory blade: identical pages (zero
// pages, shared libraries, common data) are stored once.
//
// The model is generative: each logical page draws its content class
// from a Zipf-like popularity over classes; pages in the same class are
// identical and fold together. DuplicateClasses controls how much
// cross-server redundancy exists.
type ContentSharing struct {
	// DuplicateFraction is the fraction of pages whose content belongs
	// to a shared class (the rest are unique).
	DuplicateFraction float64
	// ClassesPerDuplicate scales how many distinct shared classes exist
	// relative to duplicate pages (smaller = more folding).
	ClassesPerDuplicate float64
}

// DefaultContentSharing reflects the ~30% typical sharing reported for
// homogeneous consolidated workloads (ESX-style).
func DefaultContentSharing() ContentSharing {
	return ContentSharing{DuplicateFraction: 0.45, ClassesPerDuplicate: 0.35}
}

// Validate reports nonsensical models.
func (c ContentSharing) Validate() error {
	if c.DuplicateFraction < 0 || c.DuplicateFraction > 1 {
		return fmt.Errorf("memblade: duplicate fraction %g outside [0,1]", c.DuplicateFraction)
	}
	if c.ClassesPerDuplicate <= 0 || c.ClassesPerDuplicate > 1 {
		return fmt.Errorf("memblade: classes per duplicate %g outside (0,1]", c.ClassesPerDuplicate)
	}
	return nil
}

// Apply computes the sharing outcome for totalPages of blade-resident
// memory across the ensemble.
func (c ContentSharing) Apply(totalPages int64) (ShareStats, error) {
	if err := c.Validate(); err != nil {
		return ShareStats{}, err
	}
	dup := float64(totalPages) * c.DuplicateFraction
	unique := float64(totalPages) - dup
	distinct := unique + dup*c.ClassesPerDuplicate
	return ShareStats{
		TotalPages:    totalPages,
		DistinctPages: int64(math.Ceil(distinct)),
	}, nil
}

// Compression models MXT-style blade-memory compression: blade pages are
// stored compressed, trading capacity for a per-access decompression
// latency. Page-granularity blade access amortizes the latency well,
// which is why the paper lists compression as a natural blade extension.
type Compression struct {
	// Ratio is logical/physical (2.0 = 2:1 compression).
	Ratio float64
	// DecompressSecPerPage is added to every remote-page fetch.
	DecompressSecPerPage float64
}

// DefaultCompression uses MXT's published 2:1 typical ratio and a
// microsecond-scale page decompression.
func DefaultCompression() Compression {
	return Compression{Ratio: 2.0, DecompressSecPerPage: 1e-6}
}

// Validate reports nonsensical models.
func (c Compression) Validate() error {
	if c.Ratio < 1 {
		return fmt.Errorf("memblade: compression ratio %g below 1", c.Ratio)
	}
	if c.DecompressSecPerPage < 0 {
		return fmt.Errorf("memblade: negative decompression latency")
	}
	return nil
}

// EffectiveScheme folds sharing and/or compression into a provisioning
// scheme: the blade stores RemoteFraction of the baseline DRAM but only
// needs physical devices for the deduplicated, compressed bytes; the
// interconnect stall grows by the decompression latency.
func EffectiveScheme(base Scheme, sharing *ContentSharing, comp *Compression) (Scheme, Interconnect, error) {
	ic := PCIeX4()
	if err := base.Validate(); err != nil {
		return Scheme{}, ic, err
	}
	physical := 1.0
	if sharing != nil {
		st, err := sharing.Apply(1 << 20) // factor is size-independent
		if err != nil {
			return Scheme{}, ic, err
		}
		physical *= st.SharingFactor()
	}
	if comp != nil {
		if err := comp.Validate(); err != nil {
			return Scheme{}, ic, err
		}
		physical /= comp.Ratio
		ic.Name = ic.Name + "+mxt"
		ic.StallPerMissSec += comp.DecompressSecPerPage
	}
	out := base
	out.Name = base.Name + "+ext"
	// The blade buys physical devices only for the folded/compressed
	// pages; logical capacity is unchanged.
	out.RemotePhysicalFactor = base.RemotePhysicalFactor * physical
	return out, ic, nil
}
