package memblade

import (
	"fmt"
	"math"
	"sort"

	"warehousesim/internal/stats"
)

// Ensemble provisioning study (§3.4's motivation): "memory demands
// across workloads vary widely, and past studies have shown that
// per-server sizing for peak loads can lead to significant
// ensemble-level overprovisioning". This Monte Carlo model quantifies
// it: each server's memory demand fluctuates; per-server provisioning
// must cover each server's own peak percentile, while blade-level
// provisioning only covers the percentile of the *aggregate* — which is
// much tighter because peaks do not align.

// EnsembleConfig parameterizes the study.
type EnsembleConfig struct {
	// Servers per provisioning pool (e.g. per blade enclosure).
	Servers int
	// MeanGB and PeakToMean describe per-server demand: demand samples
	// are log-normal with the given mean, and PeakToMean is the
	// p99/mean ratio of an individual server.
	MeanGB     float64
	PeakToMean float64
	// Percentile is the provisioning target (e.g. 0.99).
	Percentile float64
	// Samples is the Monte Carlo sample count.
	Samples int
	// Seed drives sampling.
	Seed uint64
}

// DefaultEnsembleConfig mirrors the paper's enclosure scale.
func DefaultEnsembleConfig() EnsembleConfig {
	return EnsembleConfig{
		Servers:    16,
		MeanGB:     2.0,
		PeakToMean: 2.0,
		Percentile: 0.99,
		Samples:    4000,
		Seed:       1,
	}
}

// Validate reports nonsensical configurations.
func (c EnsembleConfig) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("memblade: ensemble needs servers > 0")
	case c.MeanGB <= 0:
		return fmt.Errorf("memblade: non-positive mean demand")
	case c.PeakToMean <= 1:
		return fmt.Errorf("memblade: peak/mean must exceed 1")
	case c.Percentile <= 0 || c.Percentile >= 1:
		return fmt.Errorf("memblade: percentile %g outside (0,1)", c.Percentile)
	case c.Samples < 100:
		return fmt.Errorf("memblade: need at least 100 samples")
	}
	return nil
}

// EnsembleResult compares the two provisioning strategies.
type EnsembleResult struct {
	// PerServerGB is the per-server provision covering each server's own
	// demand percentile (what conventional blades must install).
	PerServerGB float64
	// PooledPerServerGB is the pool provision per server when the blade
	// covers the aggregate percentile.
	PooledPerServerGB float64
}

// OverprovisionFactor is per-server / pooled provisioning.
func (r EnsembleResult) OverprovisionFactor() float64 {
	if r.PooledPerServerGB == 0 {
		return 0
	}
	return r.PerServerGB / r.PooledPerServerGB
}

// SavingsFraction is the DRAM the blade avoids buying.
func (r EnsembleResult) SavingsFraction() float64 {
	if r.PerServerGB == 0 {
		return 0
	}
	return 1 - r.PooledPerServerGB/r.PerServerGB
}

// SimulateEnsemble runs the Monte Carlo comparison.
func SimulateEnsemble(c EnsembleConfig) (EnsembleResult, error) {
	if err := c.Validate(); err != nil {
		return EnsembleResult{}, err
	}
	// Log-normal with the requested p99/mean ratio: solve sigma from
	// p99/mean = exp(2.326 sigma - sigma^2/2).
	sigma := solveSigma(c.PeakToMean, c.Percentile)
	dist := stats.LogNormalFromMeanP50(c.MeanGB, c.MeanGB*medianFactor(sigma))

	r := stats.NewRNG(c.Seed)
	perServer := make([]float64, 0, c.Samples*c.Servers)
	aggregate := make([]float64, 0, c.Samples)
	for s := 0; s < c.Samples; s++ {
		sum := 0.0
		for i := 0; i < c.Servers; i++ {
			d := dist.Sample(r)
			perServer = append(perServer, d)
			sum += d
		}
		aggregate = append(aggregate, sum)
	}
	sort.Float64s(perServer)
	sort.Float64s(aggregate)
	q := func(xs []float64, p float64) float64 {
		i := int(p * float64(len(xs)))
		if i >= len(xs) {
			i = len(xs) - 1
		}
		return xs[i]
	}
	return EnsembleResult{
		PerServerGB:       q(perServer, c.Percentile),
		PooledPerServerGB: q(aggregate, c.Percentile) / float64(c.Servers),
	}, nil
}

// medianFactor converts a log-normal sigma into median/mean
// (median = mean * exp(-sigma^2/2)).
func medianFactor(sigma float64) float64 {
	return math.Exp(-sigma * sigma / 2)
}

// solveSigma finds sigma such that quantile(p)/mean of a log-normal
// equals ratio: ratio = exp(z_p*sigma - sigma^2/2), solved by bisection
// (monotone increasing in sigma for sigma < z_p).
func solveSigma(ratio, p float64) float64 {
	z := normalQuantile(p)
	lo, hi := 1e-4, z*0.99
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		got := math.Exp(z*mid - mid*mid/2)
		if got < ratio {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// normalQuantile is the standard normal inverse CDF (Acklam-style
// rational approximation, ample for provisioning percentiles).
func normalQuantile(p float64) float64 {
	// Coefficients for the central region approximation.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
