// Package memblade implements the paper's ensemble-level memory-sharing
// architecture (§3.4, Figure 4): each server keeps a small local memory
// and swaps 4 KB pages against a PCIe-attached memory blade shared by
// the enclosure.
//
// The package has three parts:
//
//   - a trace-driven two-level memory simulator: the local memory is an
//     exclusive page cache with LRU, random or clock victim selection; a
//     miss swaps the faulting page with a local victim over the blade
//     interconnect (the paper models LRU and random and expects real
//     policies in between);
//
//   - interconnect latency models: a PCIe 2.0 x4 link moves a 4 KB page
//     in ~4 µs; the critical-block-first (CBF) optimization completes the
//     faulting access as soon as the needed block arrives (~0.75 µs);
//
//   - the provisioning cost schemes of Figure 4(c): static partitioning
//     (same total DRAM, 75% moved to the blade) and dynamic provisioning
//     (85% total DRAM), with the blade using slower 24% cheaper devices
//     kept in active power-down mode (>90% DRAM power reduction), plus
//     the per-server PCIe controller share ($10, 1.45 W).
package memblade

import (
	"container/list"
	"fmt"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
	"warehousesim/internal/stats"
	"warehousesim/internal/trace"
)

// Policy selects the local-memory victim-selection policy.
type Policy int

// Replacement policies. The paper evaluates LRU and Random, "expecting
// that an implementable policy would have performance between these
// points"; Clock is such a policy and is included as an ablation.
const (
	LRU Policy = iota
	Random
	Clock
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes the two-level memory simulator.
type Config struct {
	// FootprintPages is the workload's resident page working set.
	FootprintPages int64
	// LocalFraction of the footprint fits in server-local memory (the
	// paper studies 25% and 12.5%).
	LocalFraction float64
	// Policy selects victim selection.
	Policy Policy
	// Seed drives the Random policy.
	Seed uint64
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.FootprintPages <= 0:
		return fmt.Errorf("memblade: footprint must be positive")
	case c.LocalFraction <= 0 || c.LocalFraction > 1:
		return fmt.Errorf("memblade: local fraction %g outside (0,1]", c.LocalFraction)
	}
	return nil
}

// Stats summarizes a replay.
type Stats struct {
	Accesses int64
	Misses   int64
	// Writebacks counts dirty victim pages written back to the blade
	// (the paper decouples these from the critical path; they are
	// reported for the ablation benches).
	Writebacks int64
	Requests   int64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MissesPerRequest returns mean page faults per request.
func (s Stats) MissesPerRequest() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Requests)
}

// Sim is the two-level memory simulator.
type Sim struct {
	cfg      Config
	capacity int

	// Residency structures; which are active depends on the policy.
	resident map[int64]*list.Element // LRU: page -> list node
	order    *list.List              // LRU order, front = most recent

	slots   []int64        // Random/Clock: resident pages
	index   map[int64]int  // Random/Clock: page -> slot
	refBits []bool         // Clock
	hand    int            // Clock
	dirty   map[int64]bool // dirty residents (all policies)
	rng     *stats.RNG     // Random policy
	stats   Stats

	// observability (nil when not instrumented)
	rec         obs.Recorder
	sampleEvery int64
	tracer      *span.Tracer
	evBuf       [2]obs.Field // swap-event scratch; valid only during Event (Recorder contract)
}

// New builds a simulator with cold (empty) local memory.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capacity := int(float64(cfg.FootprintPages) * cfg.LocalFraction)
	if capacity < 1 {
		capacity = 1
	}
	s := &Sim{
		cfg:      cfg,
		capacity: capacity,
		dirty:    make(map[int64]bool),
		rng:      stats.NewRNG(cfg.Seed),
	}
	switch cfg.Policy {
	case LRU:
		s.resident = make(map[int64]*list.Element, capacity)
		s.order = list.New()
	default:
		s.slots = make([]int64, 0, capacity)
		s.index = make(map[int64]int, capacity)
		if cfg.Policy == Clock {
			s.refBits = make([]bool, 0, capacity)
		}
	}
	return s, nil
}

// Capacity returns the local-memory capacity in pages.
func (s *Sim) Capacity() int { return s.capacity }

// Instrument attaches a recorder: every access bumps the
// "memblade.accesses" / "memblade.misses" / "memblade.writebacks"
// counters, every miss emits a "memblade.swap" event (the page swapped
// in over the blade interconnect), and the running hit rate is sampled
// into the "memblade.hit_rate" series every sampleEvery accesses
// (0 means 1024) with the access count as the time axis — which makes
// cache warm-up directly visible. A nil or disabled recorder detaches.
func (s *Sim) Instrument(rec obs.Recorder, sampleEvery int64) {
	if !obs.On(rec) {
		s.rec = nil
		return
	}
	s.rec = rec
	if sampleEvery <= 0 {
		sampleEvery = 1024
	}
	s.sampleEvery = sampleEvery
}

// Access references a page; it returns true on a local hit. A miss
// evicts a victim (by the configured policy) and installs the page —
// the exclusive swap of §3.4.
func (s *Sim) Access(page int64, write bool) bool {
	s.stats.Accesses++
	hit := false
	switch s.cfg.Policy {
	case LRU:
		if el, ok := s.resident[page]; ok {
			s.order.MoveToFront(el)
			hit = true
		}
	default:
		if i, ok := s.index[page]; ok {
			if s.cfg.Policy == Clock {
				s.refBits[i] = true
			}
			hit = true
		}
	}
	if hit {
		if write {
			s.dirty[page] = true
		}
		s.observe(page, write, true)
		return true
	}

	s.stats.Misses++
	s.install(page)
	if write {
		s.dirty[page] = true
	}
	s.observe(page, write, false)
	if idx := s.stats.Accesses - 1; s.tracer.Sampled(idx) {
		t := float64(s.stats.Accesses)
		sid := s.tracer.Emit(0, idx, span.KindSwap, PCIeX4().Name,
			t, t+PCIeX4().StallPerMissSec*1e6)
		s.tracer.Emit(sid, idx, span.KindCBF, "",
			t, t+CBF().StallPerMissSec*1e6)
	}
	return false
}

// InstrumentSpans attaches a causal span tracer: every sampled
// remote-page fault (sampling by access index, the tracer's stride)
// emits a "swap" span — the 4 KB page moving over the PCIe blade link —
// with a nested "cbf" child marking when the critical block arrives and
// the faulting access can resume. The time axis is the access count;
// span durations are the interconnect stalls in microseconds on that
// axis (a swap renders 4 units wide, its CBF child 0.75), which keeps
// replay exports deterministic and Perfetto-loadable. A nil tracer
// detaches.
func (s *Sim) InstrumentSpans(tr *span.Tracer) { s.tracer = tr }

func (s *Sim) observe(page int64, write, hit bool) {
	if s.rec == nil {
		return
	}
	s.rec.Count("memblade.accesses", 1)
	if !hit {
		s.rec.Count("memblade.misses", 1)
		s.evBuf[0] = obs.F("page", float64(page))
		s.evBuf[1] = obs.FB("write", write)
		s.rec.Event("memblade.swap", float64(s.stats.Accesses), s.evBuf[:]...)
	}
	if s.stats.Accesses%s.sampleEvery == 0 {
		hits := s.stats.Accesses - s.stats.Misses
		s.rec.Gauge("memblade.hit_rate", float64(s.stats.Accesses),
			float64(hits)/float64(s.stats.Accesses))
	}
}

func (s *Sim) install(page int64) {
	switch s.cfg.Policy {
	case LRU:
		if s.order.Len() >= s.capacity {
			el := s.order.Back()
			victim := el.Value.(int64)
			s.order.Remove(el)
			delete(s.resident, victim)
			s.evictAccounting(victim)
		}
		s.resident[page] = s.order.PushFront(page)
	case Random:
		if len(s.slots) >= s.capacity {
			i := s.rng.Intn(len(s.slots))
			victim := s.slots[i]
			delete(s.index, victim)
			s.evictAccounting(victim)
			s.slots[i] = page
			s.index[page] = i
			return
		}
		s.index[page] = len(s.slots)
		s.slots = append(s.slots, page)
	case Clock:
		if len(s.slots) >= s.capacity {
			for {
				if s.refBits[s.hand] {
					s.refBits[s.hand] = false
					s.hand = (s.hand + 1) % len(s.slots)
					continue
				}
				victim := s.slots[s.hand]
				delete(s.index, victim)
				s.evictAccounting(victim)
				s.slots[s.hand] = page
				s.index[page] = s.hand
				s.refBits[s.hand] = true
				s.hand = (s.hand + 1) % len(s.slots)
				return
			}
		}
		s.index[page] = len(s.slots)
		s.slots = append(s.slots, page)
		s.refBits = append(s.refBits, true)
	}
}

func (s *Sim) evictAccounting(victim int64) {
	if s.dirty[victim] {
		s.stats.Writebacks++
		delete(s.dirty, victim)
		if s.rec != nil {
			s.rec.Count("memblade.writebacks", 1)
		}
	}
}

// Stats returns the accumulated counters.
func (s *Sim) Stats() Stats { return s.stats }

// Replay runs a page trace through the simulator and returns the stats
// (requests counted from the trace's boundaries).
func Replay(s *Sim, t *trace.PageTrace) Stats {
	for _, a := range t.Accesses {
		s.Access(a.Page, a.Write)
	}
	s.stats.Requests += int64(t.Requests())
	return s.stats
}
