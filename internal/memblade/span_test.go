package memblade

import (
	"testing"

	"warehousesim/internal/obs"
	"warehousesim/internal/obs/span"
)

func spanTestSim(t *testing.T, every int64) (*Sim, *obs.Sink) {
	t.Helper()
	s, err := New(Config{FootprintPages: 64, LocalFraction: 0.25, Policy: LRU, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	s.InstrumentSpans(span.NewTracer(sink, every))
	return s, sink
}

// TestSwapSpansOnMisses pins the span shape: every sampled miss emits a
// swap span on the PCIe link with a nested cbf child, hits emit
// nothing, and the durations are the interconnect stalls in
// microseconds on the access-count axis.
func TestSwapSpansOnMisses(t *testing.T) {
	s, sink := spanTestSim(t, 1)
	for page := int64(0); page < 20; page++ {
		s.Access(page, false) // cold: every access misses
	}
	s.Access(19, false) // most recently used: a hit, no span

	spans := span.Decoded(sink.Events())
	var swaps, cbfs int
	var lastSwap span.Span
	for _, sp := range spans {
		switch sp.Kind {
		case span.KindSwap:
			swaps++
			lastSwap = sp
			if sp.Res != PCIeX4().Name {
				t.Fatalf("swap span on %q, want %q", sp.Res, PCIeX4().Name)
			}
			if want := PCIeX4().StallPerMissSec * 1e6; sp.Dur != want {
				t.Fatalf("swap dur = %g, want %g us", sp.Dur, want)
			}
		case span.KindCBF:
			cbfs++
			if want := CBF().StallPerMissSec * 1e6; sp.Dur != want {
				t.Fatalf("cbf dur = %g, want %g us", sp.Dur, want)
			}
		default:
			t.Fatalf("unexpected span kind %q", sp.Kind)
		}
	}
	if int64(swaps) != s.Stats().Misses {
		t.Fatalf("%d swap spans for %d misses", swaps, s.Stats().Misses)
	}
	if cbfs != swaps {
		t.Fatalf("%d cbf children for %d swaps", cbfs, swaps)
	}
	// The final access was a hit: no span may carry its index.
	if lastSwap.Req == s.Stats().Accesses-1 {
		t.Fatal("hit emitted a swap span")
	}
}

func TestCBFNestsInSwap(t *testing.T) {
	s, sink := spanTestSim(t, 1)
	s.Access(42, false)
	spans := span.Decoded(sink.Events())
	if len(spans) != 2 {
		t.Fatalf("one miss produced %d spans, want 2", len(spans))
	}
	swap, cbf := spans[0], spans[1]
	if cbf.Parent != swap.ID {
		t.Fatalf("cbf parent = %d, swap id = %d", cbf.Parent, swap.ID)
	}
	if cbf.End() > swap.End() {
		t.Fatal("cbf outlives its swap: critical block after full page")
	}
}

func TestSwapSpanSampling(t *testing.T) {
	s, sink := spanTestSim(t, 4)
	for page := int64(0); page < 16; page++ {
		s.Access(page, false) // all misses, access indices 0..15
	}
	for _, sp := range span.Decoded(sink.Events()) {
		if sp.Req%4 != 0 {
			t.Fatalf("stride-4 tracer kept access index %d", sp.Req)
		}
	}
	if n := len(span.Decoded(sink.Events())); n != 8 { // 4 sampled misses x 2 spans
		t.Fatalf("got %d spans, want 8", n)
	}
}

// TestSpansWithoutInstrument pins that span tracing is independent of
// the hit/miss stream instrumentation: a tracer alone records.
func TestSpansWithoutInstrument(t *testing.T) {
	s, sink := spanTestSim(t, 1)
	// Note: Instrument was never called; only InstrumentSpans.
	s.Access(1, false)
	if len(span.Decoded(sink.Events())) == 0 {
		t.Fatal("tracer without Instrument recorded nothing")
	}
	if sink.CounterValue("memblade.accesses") != 0 {
		t.Fatal("tracer alone should not bump obs counters")
	}
}

func TestNilTracerDetaches(t *testing.T) {
	s, sink := spanTestSim(t, 1)
	s.InstrumentSpans(nil)
	s.Access(1, false)
	if len(sink.Events()) != 0 {
		t.Fatal("detached tracer still recorded")
	}
}
