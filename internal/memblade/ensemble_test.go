package memblade

import (
	"math"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.9600,
		0.99:  2.3263,
		0.01:  -2.3263,
		0.001: -3.0902,
	}
	for p, want := range cases {
		if got := normalQuantile(p); math.Abs(got-want) > 0.002 {
			t.Errorf("quantile(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestSolveSigma(t *testing.T) {
	// The solved sigma must reproduce the requested peak/mean ratio.
	for _, ratio := range []float64{1.3, 2.0, 3.0} {
		sigma := solveSigma(ratio, 0.99)
		z := normalQuantile(0.99)
		got := math.Exp(z*sigma - sigma*sigma/2)
		if math.Abs(got-ratio)/ratio > 0.01 {
			t.Errorf("ratio %g: sigma %g reproduces %g", ratio, sigma, got)
		}
	}
}

func TestEnsembleConfigValidate(t *testing.T) {
	if err := DefaultEnsembleConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*EnsembleConfig){
		func(c *EnsembleConfig) { c.Servers = 0 },
		func(c *EnsembleConfig) { c.MeanGB = 0 },
		func(c *EnsembleConfig) { c.PeakToMean = 1 },
		func(c *EnsembleConfig) { c.Percentile = 1 },
		func(c *EnsembleConfig) { c.Samples = 10 },
	}
	for i, mutate := range bads {
		c := DefaultEnsembleConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSimulateEnsembleShowsPoolingWin(t *testing.T) {
	res, err := SimulateEnsemble(DefaultEnsembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Per-server provisioning must be near mean*peakToMean.
	cfg := DefaultEnsembleConfig()
	want := cfg.MeanGB * cfg.PeakToMean
	if math.Abs(res.PerServerGB-want)/want > 0.15 {
		t.Errorf("per-server provision %g, want ~%g", res.PerServerGB, want)
	}
	// Pooling must sit between the mean and the per-server peak.
	if res.PooledPerServerGB <= cfg.MeanGB || res.PooledPerServerGB >= res.PerServerGB {
		t.Errorf("pooled %g not in (%g, %g)", res.PooledPerServerGB, cfg.MeanGB, res.PerServerGB)
	}
	// The paper's claim: significant overprovisioning (>25% savings at
	// this demand variability and pool size).
	if res.SavingsFraction() < 0.25 {
		t.Errorf("pooling savings only %.0f%%", res.SavingsFraction()*100)
	}
	if res.OverprovisionFactor() <= 1 {
		t.Errorf("overprovision factor %g", res.OverprovisionFactor())
	}
}

func TestPoolingImprovesWithScale(t *testing.T) {
	savings := func(servers int) float64 {
		cfg := DefaultEnsembleConfig()
		cfg.Servers = servers
		res, err := SimulateEnsemble(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.SavingsFraction()
	}
	s4, s64 := savings(4), savings(64)
	if s64 <= s4 {
		t.Errorf("bigger pools should save more: 4 servers %.2f vs 64 servers %.2f", s4, s64)
	}
}

func TestSimulateEnsembleDeterministic(t *testing.T) {
	a, err := SimulateEnsemble(DefaultEnsembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateEnsemble(DefaultEnsembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestEnsembleResultEdgeCases(t *testing.T) {
	if (EnsembleResult{}).OverprovisionFactor() != 0 {
		t.Error("zero pooled should return 0 factor")
	}
	if (EnsembleResult{}).SavingsFraction() != 0 {
		t.Error("zero per-server should return 0 savings")
	}
}
