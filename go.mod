module warehousesim

go 1.22
