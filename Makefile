# Tier-1 gate for warehousesim (documented in ROADMAP.md).
#
#   make check   — everything CI runs: vet, build, race tests, gofmt
#   make test    — plain tests (the seed tier-1 command)
#   make bench   — benchmark harness with allocation reporting
#   make bench-json — machine-readable micro-bench record (BENCH_$(N).json)
#   make bench-diff — regression-gate BENCH_NEW against BENCH_OLD
#                     (non-zero exit when ns/op regresses past the
#                     tolerance or B/op / allocs/op grow at all)

GO ?= go
N ?= 2
BENCH_OLD ?= BENCH_2.json
BENCH_NEW ?= BENCH_3.json

.PHONY: check vet build test test-race fmt bench bench-json bench-diff

check: vet build test-race fmt

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

bench-json:
	$(GO) run ./cmd/whbench -bench-json BENCH_$(N).json

bench-diff:
	$(GO) run ./cmd/whbench -bench-diff $(BENCH_OLD) $(BENCH_NEW)
