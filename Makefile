# Tier-1 gate for warehousesim (documented in ROADMAP.md).
#
#   make check   — everything CI runs: vet, build, race tests, gofmt
#   make test    — plain tests (the seed tier-1 command)
#   make bench   — benchmark harness with allocation reporting
#   make bench-json — machine-readable micro-bench record (BENCH_$(N).json)

GO ?= go
N ?= 2

.PHONY: check vet build test test-race fmt bench bench-json

check: vet build test-race fmt

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

bench-json:
	$(GO) run ./cmd/whbench -bench-json BENCH_$(N).json
