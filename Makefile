# Tier-1 gate for warehousesim (documented in ROADMAP.md).
#
#   make check   — everything CI runs: vet, lint, build, race tests,
#                  gofmt, shard-equivalence (sharded kernel must
#                  reproduce the single-heap export byte-for-byte)
#   make lint    — whvet, the repo's own static-invariant suite
#                  (determinism, allocation, link-boundary; DESIGN.md §11)
#   make test    — plain tests (the seed tier-1 command)
#   make bench   — benchmark harness with allocation reporting
#   make bench-json — machine-readable micro-bench record (BENCH_$(N).json)
#   make bench-diff — regression-gate BENCH_NEW against BENCH_OLD
#                     (non-zero exit when ns/op regresses past the
#                     tolerance or B/op / allocs/op grow at all)
#   make shard-diff — the shard-equivalence gate on its own
#   make shard-race — the shard engine's tests under the race detector
#                     at GOMAXPROCS 1 and 4 (serial schedules hide
#                     different bugs than parallel ones)
#   make speedup-smoke — kernel workload at 4 shards vs 1 must reach a
#                     1.3x wall-clock speedup (skips on machines with
#                     fewer than 4 CPUs)
#   make slo-diff   — the windowed-SLO equivalence gate: -slo-out must be
#                     byte-identical (whole file) across shard and par counts
#   make energy-diff — the energy-telemetry equivalence gate: -energy-out
#                     must be byte-identical (whole file) across shard and
#                     par counts
#   make fleet-diff — the fleet-hybrid equivalence gate: a whsim fleet
#                     run's -obs-out body must be byte-identical across
#                     shard counts, worker counts, and hot-set orderings
#   make introspect-smoke — start whsim -http, assert /obs/windows,
#                     /obs/shards and /obs/energy serve their schemas
#   make cover      — per-package coverage, with an 80% floor on
#                     internal/obs/...

GO ?= go
N ?= 5
BENCH_OLD ?= BENCH_4.json
BENCH_NEW ?= BENCH_5.json
# EFF_FLOOR gates the new record's kernel parallel efficiency at 4
# shards in bench-diff (skipped automatically when the recording
# machine had fewer than 4 CPUs or GOMAXPROCS).
EFF_FLOOR ?= 0.4

.PHONY: check vet lint build test test-race fmt bench bench-json bench-diff shard-diff shard-race speedup-smoke slo-diff energy-diff fleet-diff introspect-smoke cover

check: vet lint build test-race fmt shard-diff shard-race speedup-smoke slo-diff energy-diff fleet-diff introspect-smoke

vet:
	$(GO) vet ./...

# whvet statically enforces what the byte-diff gates below only
# sample: no nondeterminism sources in model code, no unordered map
# iteration on export paths, net/http only behind the introspect
# boundary, allocation discipline in //perf:hotpath functions, and the
# metric-name registry. Findings are suppressed only by reasoned
# //whvet:allow directives (see DESIGN.md §11).
lint:
	$(GO) run ./cmd/whvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The shard engine is the only package whose correctness depends on
# goroutine scheduling; -cpu 1,4 runs its race tests under both a
# serial and a genuinely parallel scheduler.
shard-race:
	$(GO) test -race -cpu 1,4 ./internal/des/shard/...

# Wall-clock speedup gate: the compute-dense kernel workload at 4
# shards must beat 1 shard by 1.3x on a machine with >= 4 CPUs (the
# gate skips itself, loudly, anywhere it cannot physically pass).
speedup-smoke:
	$(GO) run ./cmd/whbench -speedup-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Shard-equivalence: a whsim DES run on the sharded kernel must export
# the same observability record at every shard count. The manifest
# (line 1) records the configured shard count, so the gate compares the
# export bodies — every counter, histogram, series sample and event —
# byte-for-byte.
shard-diff:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/whsim" ./cmd/whsim && \
	"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
		-shards 1 -enclosures 4 -boards 2 -obs-out "$$tmp/s1.jsonl" >/dev/null && \
	"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
		-shards 4 -enclosures 4 -boards 2 -obs-out "$$tmp/s4.jsonl" >/dev/null && \
	tail -n +2 "$$tmp/s1.jsonl" > "$$tmp/s1.body" && \
	tail -n +2 "$$tmp/s4.jsonl" > "$$tmp/s4.body" && \
	if cmp -s "$$tmp/s1.body" "$$tmp/s4.body"; then \
		echo "shard-diff: shards=1 and shards=4 exports are byte-identical"; \
	else \
		echo "shard-diff: exports DIVERGED between shards=1 and shards=4:"; \
		cmp "$$tmp/s1.body" "$$tmp/s4.body"; exit 1; \
	fi

# Windowed-SLO equivalence: the -slo-out export carries no shard or
# parallelism count anywhere (manifest included), so the gate compares
# whole files across shard counts and ramp parallelism.
slo-diff:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/whsim" ./cmd/whsim && \
	for s in 1 2 4; do \
		"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
			-shards $$s -enclosures 4 -boards 2 \
			-slo-out "$$tmp/slo-s$$s.jsonl" >/dev/null 2>&1 || exit 1; \
	done && \
	for p in 1 4; do \
		"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
			-par $$p -slo-out "$$tmp/slo-p$$p.jsonl" >/dev/null 2>&1 || exit 1; \
	done && \
	ok=1; \
	for f in slo-s2 slo-s4; do \
		cmp -s "$$tmp/slo-s1.jsonl" "$$tmp/$$f.jsonl" || { \
			echo "slo-diff: $$f.jsonl DIVERGED from slo-s1.jsonl:"; \
			cmp "$$tmp/slo-s1.jsonl" "$$tmp/$$f.jsonl"; ok=0; }; \
	done; \
	cmp -s "$$tmp/slo-p1.jsonl" "$$tmp/slo-p4.jsonl" || { \
		echo "slo-diff: par=4 export DIVERGED from par=1:"; \
		cmp "$$tmp/slo-p1.jsonl" "$$tmp/slo-p4.jsonl"; ok=0; }; \
	[ $$ok -eq 1 ] && echo "slo-diff: -slo-out byte-identical across shards 1/2/4 and par 1/4" || exit 1

# Energy equivalence: the -energy-out export carries no shard or
# parallelism count anywhere (manifest included), so the gate compares
# whole files across shard counts and ramp parallelism.
energy-diff:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/whsim" ./cmd/whsim && \
	for s in 1 2 4; do \
		"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
			-shards $$s -enclosures 4 -boards 2 \
			-energy-window 1s -energy-out "$$tmp/en-s$$s.jsonl" >/dev/null 2>&1 || exit 1; \
	done && \
	for p in 1 4; do \
		"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
			-par $$p -energy-window 1s -energy-out "$$tmp/en-p$$p.jsonl" >/dev/null 2>&1 || exit 1; \
	done && \
	ok=1; \
	for f in en-s2 en-s4; do \
		cmp -s "$$tmp/en-s1.jsonl" "$$tmp/$$f.jsonl" || { \
			echo "energy-diff: $$f.jsonl DIVERGED from en-s1.jsonl:"; \
			cmp "$$tmp/en-s1.jsonl" "$$tmp/$$f.jsonl"; ok=0; }; \
	done; \
	cmp -s "$$tmp/en-p1.jsonl" "$$tmp/en-p4.jsonl" || { \
		echo "energy-diff: par=4 export DIVERGED from par=1:"; \
		cmp "$$tmp/en-p1.jsonl" "$$tmp/en-p4.jsonl"; ok=0; }; \
	[ $$ok -eq 1 ] && echo "energy-diff: -energy-out byte-identical across shards 1/2/4 and par 1/4" || exit 1

# Fleet-hybrid equivalence: a fleet run (hot racks on the sharded DES,
# cold racks on the analytic stand-in) must export the same
# observability record at every shard count, every worker count, and
# every ordering of the same hot set. The manifest (line 1) records the
# configured shape, so the gate compares export bodies byte-for-byte.
fleet-diff:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/whsim" ./cmd/whsim && \
	base="-system emb1 -workload websearch -des -measure 10 \
		-racks 12 -enclosures 4 -boards 2"; \
	"$$tmp/whsim" $$base -hot-set 3,9 -shards 2 \
		-obs-out "$$tmp/a.jsonl" >/dev/null && \
	"$$tmp/whsim" $$base -hot-set 9,3 -shards 2 \
		-obs-out "$$tmp/b.jsonl" >/dev/null && \
	"$$tmp/whsim" $$base -hot-set 3,9 -shards 1 \
		-obs-out "$$tmp/c.jsonl" >/dev/null && \
	"$$tmp/whsim" $$base -hot-set 3,9 -shards 4 -par 4 \
		-obs-out "$$tmp/d.jsonl" >/dev/null && \
	for f in a b c d; do tail -n +2 "$$tmp/$$f.jsonl" > "$$tmp/$$f.body"; done && \
	ok=1; \
	for f in b c d; do \
		cmp -s "$$tmp/a.body" "$$tmp/$$f.body" || { \
			echo "fleet-diff: $$f.jsonl body DIVERGED from a.jsonl:"; \
			cmp "$$tmp/a.body" "$$tmp/$$f.body"; ok=0; }; \
	done; \
	[ $$ok -eq 1 ] && echo "fleet-diff: fleet exports byte-identical across hot-set order, shards 1/2/4, par 4" || exit 1

# Introspection smoke: start whsim with the live endpoints on an
# ephemeral port, poll /obs/windows, /obs/shards and /obs/energy until
# they publish, and assert each serves its schema tag.
introspect-smoke:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"; kill $$pid 2>/dev/null || true' EXIT; \
	$(GO) build -o "$$tmp/whsim" ./cmd/whsim || exit 1; \
	: >"$$tmp/log"; \
	"$$tmp/whsim" -system emb1 -workload websearch -des -measure 600 \
		-shards 2 -enclosures 4 -boards 2 -slo-window 1s -energy-window 1s \
		-http 127.0.0.1:0 >/dev/null 2>"$$tmp/log" & pid=$$!; \
	addr=""; for i in $$(seq 1 50); do \
		addr="$$(sed -n 's|.*serving http://\([^ ]*\) .*|\1|p' "$$tmp/log" | head -1)"; \
		[ -n "$$addr" ] && break; sleep 0.2; \
	done; \
	[ -n "$$addr" ] || { echo "introspect-smoke: server never announced its address"; cat "$$tmp/log"; exit 1; }; \
	win=""; for i in $$(seq 1 100); do \
		win="$$(curl -sf "http://$$addr/obs/windows" 2>/dev/null)" && break; sleep 0.2; \
	done; \
	echo "$$win" | grep -q '"schema":"warehousesim-windows/v1"' || { \
		echo "introspect-smoke: /obs/windows missing schema: $$win"; exit 1; }; \
	sh="$$(curl -sf "http://$$addr/obs/shards")" || { echo "introspect-smoke: /obs/shards unreachable"; exit 1; }; \
	echo "$$sh" | grep -q '"schema":"warehousesim-shards/v1"' || { \
		echo "introspect-smoke: /obs/shards missing schema: $$sh"; exit 1; }; \
	echo "$$sh" | grep -q '"shards":2' || { \
		echo "introspect-smoke: /obs/shards does not report 2 shards: $$sh"; exit 1; }; \
	en=""; for i in $$(seq 1 100); do \
		en="$$(curl -sf "http://$$addr/obs/energy" 2>/dev/null)" && break; sleep 0.2; \
	done; \
	echo "$$en" | grep -q '"schema":"warehousesim-energy-live/v1"' || { \
		echo "introspect-smoke: /obs/energy missing schema: $$en"; exit 1; }; \
	kill $$pid 2>/dev/null; \
	echo "introspect-smoke: /obs/windows, /obs/shards and /obs/energy serve their schemas"

# Coverage with a floor on the observability packages: the windowed
# metrics plane is the byte-compared surface, so internal/obs/... must
# hold at least 80% statement coverage.
cover:
	@$(GO) test -cover ./... | tee /dev/stderr | \
	awk '/^ok/ && $$2 ~ /^warehousesim\/internal\/obs/ { \
		for (i = 1; i <= NF; i++) if ($$i == "coverage:") { \
			pct = $$(i+1); sub(/%$$/, "", pct); \
			if (pct + 0 < 80) { printf "cover: %s at %s%% (floor 80%%)\n", $$2, pct; bad = 1 } } } \
	END { exit bad }'

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

bench-json:
	$(GO) run ./cmd/whbench -bench-json BENCH_$(N).json

bench-diff:
	$(GO) run ./cmd/whbench -bench-diff -eff-floor $(EFF_FLOOR) $(BENCH_OLD) $(BENCH_NEW)
