# Tier-1 gate for warehousesim (documented in ROADMAP.md).
#
#   make check   — everything CI runs: vet, build, race tests, gofmt,
#                  shard-equivalence (sharded kernel must reproduce the
#                  single-heap export byte-for-byte)
#   make test    — plain tests (the seed tier-1 command)
#   make bench   — benchmark harness with allocation reporting
#   make bench-json — machine-readable micro-bench record (BENCH_$(N).json)
#   make bench-diff — regression-gate BENCH_NEW against BENCH_OLD
#                     (non-zero exit when ns/op regresses past the
#                     tolerance or B/op / allocs/op grow at all)
#   make shard-diff — the shard-equivalence gate on its own

GO ?= go
N ?= 4
BENCH_OLD ?= BENCH_3.json
BENCH_NEW ?= BENCH_4.json

.PHONY: check vet build test test-race fmt bench bench-json bench-diff shard-diff

check: vet build test-race fmt shard-diff

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Shard-equivalence: a whsim DES run on the sharded kernel must export
# the same observability record at every shard count. The manifest
# (line 1) records the configured shard count, so the gate compares the
# export bodies — every counter, histogram, series sample and event —
# byte-for-byte.
shard-diff:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/whsim" ./cmd/whsim && \
	"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
		-shards 1 -enclosures 4 -boards 2 -obs-out "$$tmp/s1.jsonl" >/dev/null && \
	"$$tmp/whsim" -system emb1 -workload websearch -des -measure 20 \
		-shards 4 -enclosures 4 -boards 2 -obs-out "$$tmp/s4.jsonl" >/dev/null && \
	tail -n +2 "$$tmp/s1.jsonl" > "$$tmp/s1.body" && \
	tail -n +2 "$$tmp/s4.jsonl" > "$$tmp/s4.body" && \
	if cmp -s "$$tmp/s1.body" "$$tmp/s4.body"; then \
		echo "shard-diff: shards=1 and shards=4 exports are byte-identical"; \
	else \
		echo "shard-diff: exports DIVERGED between shards=1 and shards=4:"; \
		cmp "$$tmp/s1.body" "$$tmp/s4.body"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

bench-json:
	$(GO) run ./cmd/whbench -bench-json BENCH_$(N).json

bench-diff:
	$(GO) run ./cmd/whbench -bench-diff $(BENCH_OLD) $(BENCH_NEW)
